"""Service admission control and graceful degradation.

The robustness contract under test (see ``repro.service.server``):

* past the ``max_inflight`` budget, new computations get the typed
  retryable ``busy`` error while admitted ones complete; in-flight
  dedup joiners stay free;
* the ``health`` probe always answers, without consuming budget;
* a campaign request's ``deadline_s`` degrades gracefully: a partial
  result flagged ``degraded: true``, never a dropped request;
* an oversized request line gets a clean ``ContractError`` response
  and the connection — including pipelined requests behind the bad
  line — survives.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.engine import ExplorationEngine, JobFailure
from repro.engine.resilience import failure_from
from repro.errors import ReproError, ServiceBusyError, WorkerCrashError
from repro.service import DesignService
from repro.service.jobqueue import BatchingEngine
from repro.topology.library import make_topology

CAMPAIGN = {
    "v": 1,
    "kind": "campaign",
    "params": {
        "app": "vopd",
        "topology": "mesh",
        "rates": [0.05],
        "patterns": ["uniform"],
        "seeds": [1],
        "warmup": 20,
        "measure": 60,
        "drain": 20,
    },
}
HEALTH = {"v": 1, "kind": "health", "params": {}}


def campaign(request_id: str, **params) -> dict:
    payload = dict(CAMPAIGN, id=request_id)
    payload["params"] = dict(CAMPAIGN["params"], **params)
    return payload


def handle(service: DesignService, payload: dict) -> dict:
    return asyncio.run(service.handle(payload))


class TestHealth:
    def test_health_probe_reports_the_service_state(self):
        service = DesignService(max_inflight=3)
        response = handle(service, dict(HEALTH, id="h1"))
        assert response["ok"], response
        assert response["kind"] == "health"
        assert response["id"] == "h1"
        result = response["result"]
        assert result["status"] == "ok"
        assert result["in_flight"] == 0
        assert result["max_inflight"] == 3
        assert result["busy_rejections"] == 0
        assert result["job_failures"] == {}
        assert set(result["cache"]) == {
            "entries", "hits", "misses", "evictions", "write_errors",
        }

    def test_health_requires_no_params_content(self):
        response = handle(DesignService(), HEALTH)
        assert response["ok"], response


class TestAdmissionControl:
    def test_over_budget_burst_gets_typed_busy(self):
        service = DesignService(max_inflight=1)

        async def burst():
            return await asyncio.gather(
                service.handle(campaign("admitted")),
                service.handle(campaign("rejected", rates=[0.08])),
            )

        first, second = asyncio.run(burst())
        assert first["ok"], first
        assert not second["ok"]
        error = second["error"]
        assert error["type"] == "ServiceBusyError"
        assert error["code"] == "busy"
        assert error["retryable"] is True
        assert error["retry_after_s"] > 0
        assert service.busy_rejections == 1
        assert service.computed == 1  # the rejected request cost nothing

    def test_dedup_joiners_do_not_consume_budget(self):
        service = DesignService(max_inflight=1)

        async def burst():
            return await asyncio.gather(
                service.handle(campaign("owner")),
                service.handle(campaign("joiner")),
                service.handle(campaign("other", rates=[0.08])),
            )

        owner, joiner, other = asyncio.run(burst())
        assert owner["ok"] and joiner["ok"]
        assert joiner["stats"]["deduped"] is True
        assert not other["ok"]
        assert other["error"]["code"] == "busy"
        assert service.computed == 1

    def test_health_answers_while_saturated(self):
        service = DesignService(max_inflight=1)

        async def scenario():
            compute = asyncio.ensure_future(
                service.handle(campaign("slow"))
            )
            await asyncio.sleep(0.01)  # let it be admitted
            probe = await service.handle(dict(HEALTH, id="probe"))
            return probe, await compute

        probe, compute = asyncio.run(scenario())
        assert compute["ok"]
        assert probe["ok"]
        assert probe["result"]["in_flight"] in (0, 1)

    def test_busy_rejection_retires_the_inflight_entry(self):
        service = DesignService(max_inflight=1)

        async def burst():
            return await asyncio.gather(
                service.handle(campaign("a")),
                service.handle(campaign("b", rates=[0.08])),
            )

        asyncio.run(burst())
        assert len(service.inflight) == 0
        # The rejected fingerprint is usable again once load clears.
        retry = handle(service, campaign("b-retry", rates=[0.08]))
        assert retry["ok"], retry

    def test_max_inflight_validation(self):
        with pytest.raises(ReproError):
            DesignService(max_inflight=0)
        with pytest.raises(ReproError):
            DesignService(max_request_bytes=512)


class TestDeadlineDegradation:
    def test_deadline_returns_partial_flagged_degraded(self):
        response = handle(
            DesignService(),
            campaign(
                "dl",
                rates=[0.05, 0.1],
                patterns=["uniform", "transpose"],
                deadline_s=1e-9,
            ),
        )
        assert response["ok"], response
        result = response["result"]
        assert result["degraded"] is True
        assert result["skipped_points"] == 2
        assert len(result["points"]) == 2  # the first chunk always runs

    def test_generous_deadline_changes_nothing(self):
        from repro.simulation.campaign import strip_runtime

        plain = handle(DesignService(), campaign("p"))
        relaxed = handle(
            DesignService(), campaign("r", deadline_s=3600.0)
        )
        assert strip_runtime(plain["result"]) == strip_runtime(
            relaxed["result"]
        )
        assert "degraded" not in plain["result"]

    @pytest.mark.parametrize("bad", [0, -1.5, "fast"])
    def test_invalid_deadline_is_a_contract_error(self, bad):
        response = handle(
            DesignService(), campaign("bad", deadline_s=bad)
        )
        assert not response["ok"]
        assert response["error"]["type"] == "ContractError"


class FailingExecutor:
    """Stub executor failing the first submitted job of every run."""

    name = "failing"

    def run(self, fn, indexed_jobs):
        for position, (index, job) in enumerate(indexed_jobs):
            if position == 0:
                exc = WorkerCrashError(f"chaos took {job.tag!r}")
                yield index, failure_from(job, exc, attempts=3, kind="crash")
            else:
                yield index, fn(job)


class TestBatchingEngineFailures:
    def jobs(self, vopd_app):
        engine = ExplorationEngine()
        return engine.selection_jobs(
            vopd_app,
            topologies=[make_topology("mesh", vopd_app.num_cores),
                        make_topology("ring", vopd_app.num_cores)],
        )

    def test_on_failure_skip_passes_through(self, vopd_app):
        batching = BatchingEngine(
            ExplorationEngine(executor=FailingExecutor()), window_s=0
        )
        results = batching.run(self.jobs(vopd_app), on_failure="skip")
        assert isinstance(results[0], JobFailure)
        assert results[1].ok
        assert batching.failure_stats["crash"] == 1

    def test_on_failure_raise_raises_per_submission(self, vopd_app):
        batching = BatchingEngine(
            ExplorationEngine(executor=FailingExecutor()), window_s=0
        )
        with pytest.raises(WorkerCrashError):
            batching.run(self.jobs(vopd_app))

    def test_invalid_on_failure_is_rejected(self, vopd_app):
        batching = BatchingEngine(ExplorationEngine(), window_s=0)
        with pytest.raises(ReproError):
            batching.run(self.jobs(vopd_app), on_failure="ignore")


class TestOversizedLines:
    """TCP transport: over-limit lines answered, connection intact."""

    def _serve(self, coro_factory):
        async def scenario():
            service = DesignService(max_request_bytes=2048)
            server = await service.start("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                return await coro_factory(port)
            finally:
                server.close()
                await server.wait_closed()

        return asyncio.run(scenario())

    def test_oversized_line_gets_contract_error_not_a_drop(self):
        async def scenario(port):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            writer.write(b"x" * 5000 + b"\n")
            writer.write(
                json.dumps(dict(HEALTH, id="after")).encode() + b"\n"
            )
            await writer.drain()
            first = json.loads(await reader.readline())
            second = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            return first, second

        first, second = self._serve(scenario)
        assert not first["ok"]
        assert first["error"]["type"] == "ContractError"
        assert "byte limit" in first["error"]["message"]
        # The pipelined request behind the bad line still got served.
        assert second["ok"] and second["id"] == "after"

    def test_unterminated_final_line_is_still_a_request(self):
        async def scenario(port):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            writer.write(json.dumps(dict(HEALTH, id="eof")).encode())
            writer.write_eof()  # EOF with no trailing newline
            response = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            return response

        response = self._serve(scenario)
        assert response["ok"] and response["id"] == "eof"


class TestBusyError:
    def test_retry_after_default(self):
        exc = ServiceBusyError("full")
        assert exc.retry_after_s == 1.0

    def test_retry_hint_tracks_compute_time(self):
        service = DesignService(max_inflight=1)
        assert service._retry_hint() == 1.0
        handle(service, campaign("warm"))
        hint = service._retry_hint()
        assert 0.05 <= hint <= 30.0
