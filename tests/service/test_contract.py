"""The JSON contract: validation, normalization, fingerprints.

Every rule asserted here is documented in ``docs/SERVICE_API.md``; the
two are maintained in lockstep.
"""

from __future__ import annotations

import pytest

from repro.errors import ContractError, ReproError, ServiceError
from repro.service.contract import (
    CONTRACT_VERSION,
    DesignResponse,
    error_response,
    parse_request,
    validate,
)


def select_payload(**params) -> dict:
    params.setdefault("app", "vopd")
    return {"v": CONTRACT_VERSION, "kind": "select", "params": params}


class TestValidator:
    def test_type_checks(self):
        validate({"a": 1}, {"type": "object"})
        with pytest.raises(ContractError, match=r"\$: expected object"):
            validate([], {"type": "object"})

    def test_bool_is_not_a_number(self):
        with pytest.raises(ContractError, match="expected integer"):
            validate(True, {"type": "integer"})
        with pytest.raises(ContractError, match="expected number"):
            validate(False, {"type": "number"})

    def test_enum_and_const(self):
        with pytest.raises(ContractError, match="not one of"):
            validate("x", {"enum": ["a", "b"]})
        with pytest.raises(ContractError, match="must be 1"):
            validate(2, {"const": 1})

    def test_numeric_bounds(self):
        with pytest.raises(ContractError, match="below the minimum"):
            validate(0, {"type": "integer", "minimum": 1})
        with pytest.raises(ContractError, match="greater than"):
            validate(0.0, {"type": "number", "exclusiveMinimum": 0})

    def test_object_rules_name_the_path(self):
        schema = {
            "type": "object",
            "required": ["a"],
            "additionalProperties": False,
            "properties": {"a": {"type": "string"}},
        }
        with pytest.raises(ContractError, match=r"\$\.p: missing required"):
            validate({"p": {}}, {"properties": {"p": schema}})
        with pytest.raises(ContractError, match="unknown field"):
            validate({"a": "x", "zz": 1}, schema)

    def test_array_rules(self):
        schema = {"type": "array", "minItems": 1, "items": {"type": "integer"}}
        with pytest.raises(ContractError, match="at least 1"):
            validate([], schema)
        with pytest.raises(ContractError, match=r"\$\[1\]"):
            validate([1, "x"], schema)


class TestParseRequest:
    def test_defaults_are_normalized_in(self):
        request = parse_request(select_payload())
        assert request.params["routing"] == "MP"
        assert request.params["objective"] == "hops"
        assert request.params["fallback"] is True
        assert request.cache == "default"

    def test_fingerprint_is_spelling_invariant(self):
        bare = parse_request(select_payload())
        spelled = parse_request(
            select_payload(routing="MP", objective="hops")
        )
        assert bare.fingerprint() == spelled.fingerprint()

    def test_fingerprint_ignores_id_and_cache(self):
        a = parse_request({**select_payload(), "id": "a", "cache": "refresh"})
        b = parse_request({**select_payload(), "id": "b"})
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_differs_on_params(self):
        a = parse_request(select_payload(routing="MP"))
        b = parse_request(select_payload(routing="DO"))
        assert a.fingerprint() != b.fingerprint()

    def test_wrong_version_rejected(self):
        with pytest.raises(ContractError, match=r"\$\.v"):
            parse_request({"v": 99, "kind": "select", "params": {}})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ContractError, match=r"\$\.kind"):
            parse_request(
                {"v": CONTRACT_VERSION, "kind": "mystery", "params": {}}
            )

    def test_non_object_rejected(self):
        with pytest.raises(ContractError, match="JSON object"):
            parse_request(["not", "an", "object"])

    def test_unknown_param_rejected(self):
        with pytest.raises(ContractError, match="unknown field"):
            parse_request(select_payload(bogus=1))

    def test_select_needs_exactly_one_application(self):
        with pytest.raises(ContractError, match="exactly one"):
            parse_request(
                {"v": CONTRACT_VERSION, "kind": "select", "params": {}}
            )
        with pytest.raises(ContractError, match="exactly one"):
            parse_request(
                select_payload(core_graph={"name": "x", "cores": [],
                                           "flows": []})
            )

    def test_campaign_needs_exactly_one_topology(self):
        base = {"v": CONTRACT_VERSION, "kind": "campaign"}
        with pytest.raises(ContractError, match="exactly one of 'topology'"):
            parse_request({**base, "params": {"app": "vopd"}})

    def test_campaign_library_topology_needs_a_size(self):
        with pytest.raises(ContractError, match="needs a size"):
            parse_request(
                {
                    "v": CONTRACT_VERSION,
                    "kind": "campaign",
                    "params": {"topology": "mesh", "patterns": ["uniform"]},
                }
            )

    def test_campaign_app_pattern_needs_an_application(self):
        with pytest.raises(ContractError, match="'app' trace pattern"):
            parse_request(
                {
                    "v": CONTRACT_VERSION,
                    "kind": "campaign",
                    "params": {
                        "topology": "mesh",
                        "cores": 9,
                        "patterns": ["app"],
                    },
                }
            )

    def test_invalid_cache_control_rejected(self):
        with pytest.raises(ContractError, match=r"\$\.cache"):
            parse_request({**select_payload(), "cache": "always"})


class TestResponses:
    def test_result_xor_error(self):
        ok = DesignResponse(kind="select", request_id="a", result={"x": 1})
        payload = ok.to_dict()
        assert payload["ok"] is True
        assert payload["result"] == {"x": 1}
        assert "error" not in payload

        bad = error_response("select", "a", ContractError("boom"))
        payload = bad.to_dict()
        assert payload["ok"] is False
        assert payload["error"] == {"type": "ContractError", "message": "boom"}
        assert "result" not in payload

    def test_error_type_names_follow_the_hierarchy(self):
        assert issubclass(ContractError, ServiceError)
        assert issubclass(ServiceError, ReproError)
        response = error_response(None, None, ValueError("x"))
        assert response.kind == "unknown"
        assert response.error["type"] == "ValueError"
