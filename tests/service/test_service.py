"""The design service: bit-identity, dedup, batching, warm starts.

The service's central promise: a response's ``result`` payload is
byte-identical to the equivalent direct library call — whatever cache
backend serves it, however requests are deduped or batched, and
whichever process computed it first.
"""

from __future__ import annotations

import asyncio
import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.core.greedy import initial_greedy_mapping
from repro.engine import EvaluationJob, ExplorationEngine
from repro.io import selection_to_dict
from repro.service import DesignService
from repro.service.jobqueue import BatchingEngine
from repro.service.server import submit_async
from repro.simulation.campaign import (
    CampaignConfig,
    run_campaign,
    strip_runtime,
)
from repro.sunmap import run_sunmap
from repro.synthesis.generate import SynthesisConfig, synthesize_topologies
from repro.topology.library import make_topology

#: Small, fast request bodies reused across tests.
SELECT = {
    "v": 1,
    "kind": "select",
    "params": {"app": "vopd", "routing": "MP"},
}
SYNTHESIZE = {
    "v": 1,
    "kind": "synthesize",
    "params": {
        "app": "vopd",
        "strategies": ["greedy"],
        "concentrations": [3],
        "max_switch_degrees": [6],
        "max_candidates": 3,
    },
}
CAMPAIGN = {
    "v": 1,
    "kind": "campaign",
    "params": {
        "app": "vopd",
        "topology": "mesh",
        "rates": [0.05, 0.1],
        "patterns": ["app", "uniform"],
        "seeds": [1],
        "warmup": 50,
        "measure": 100,
        "drain": 50,
    },
}


def handle(service: DesignService, payload: dict) -> dict:
    return asyncio.run(service.handle(payload))


def canonical(value) -> str:
    """Byte-level identity proxy: canonical JSON of the payload."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


class TestBitIdentity:
    """Service results == direct library calls, byte for byte."""

    def test_select_matches_run_sunmap(self, vopd_app):
        response = handle(DesignService(), SELECT)
        assert response["ok"], response
        report = run_sunmap(vopd_app, routing="MP", generate=False)
        expected = {
            "application": vopd_app.name,
            "attempted_routings": report.attempted_routings,
            "selection": selection_to_dict(report.selection),
        }
        assert canonical(response["result"]) == canonical(
            json.loads(json.dumps(expected))
        )

    def test_synthesize_matches_direct_call(self, vopd_app):
        response = handle(DesignService(), SYNTHESIZE)
        assert response["ok"], response
        result = synthesize_topologies(
            vopd_app,
            config=SynthesisConfig(
                strategies=("greedy",),
                concentrations=(3,),
                max_switch_degrees=(6,),
                max_candidates=3,
            ),
        )
        assert response["result"]["best"] == (
            None if result.best is None else result.best.name
        )
        assert canonical(response["result"]["rows"]) == canonical(
            json.loads(json.dumps(result.to_dict()["rows"]))
        )

    def test_campaign_matches_direct_call(self, vopd_app):
        response = handle(DesignService(), CAMPAIGN)
        assert response["ok"], response
        topology = make_topology("mesh", vopd_app.num_cores)
        direct = run_campaign(
            topology,
            core_graph=vopd_app,
            assignment=initial_greedy_mapping(vopd_app, topology),
            config=CampaignConfig(
                rates=(0.05, 0.1),
                patterns=("app", "uniform"),
                seeds=(1,),
                warmup=50,
                measure=100,
                drain=50,
            ),
        )
        assert canonical(strip_runtime(response["result"])) == canonical(
            json.loads(json.dumps(strip_runtime(direct.to_dict())))
        )

    @pytest.mark.parametrize("spec", ["sqlite:{}/evals.db", "dir:{}/store"])
    def test_identity_holds_from_a_warm_backend(self, tmp_path, spec):
        """Cold compute and warm replay produce identical results."""
        spec = spec.format(tmp_path)
        cold = handle(DesignService(cache_backend=spec), CAMPAIGN)
        warm_service = DesignService(cache_backend=spec)
        warm = handle(warm_service, CAMPAIGN)
        assert warm_service.engine.cache.stats.misses == 0
        assert canonical(strip_runtime(cold["result"])) == canonical(
            strip_runtime(warm["result"])
        )


class TestInFlightDedup:
    def test_n_identical_requests_compute_once(self):
        service = DesignService()

        async def burst():
            return await asyncio.gather(
                *(service.handle(dict(SELECT, id=f"r{i}")) for i in range(5))
            )

        responses = asyncio.run(burst())
        assert service.computed == 1  # exactly one computation
        assert service.inflight.deduped == 4
        assert sum(r["stats"]["deduped"] for r in responses) == 4
        payloads = {canonical(r["result"]) for r in responses}
        assert len(payloads) == 1  # every awaiter got the same bits
        assert [r["id"] for r in responses] == [f"r{i}" for i in range(5)]

    def test_owner_failure_reaches_every_awaiter(self):
        service = DesignService()
        bad = {
            "v": 1,
            "kind": "campaign",
            "params": {
                "topology": "no-such-fabric",
                "cores": 9,
                "patterns": ["uniform"],
                "rates": [0.05],
                "warmup": 10,
                "measure": 20,
                "drain": 10,
            },
        }

        async def burst():
            return await asyncio.gather(
                *(service.handle(dict(bad, id=f"r{i}")) for i in range(3))
            )

        responses = asyncio.run(burst())
        assert all(not r["ok"] for r in responses)
        assert {r["error"]["type"] for r in responses} == {"TopologyError"}
        assert len(service.inflight) == 0  # table retired the entry

    def test_refresh_and_bypass_do_not_join_the_table(self):
        service = DesignService()

        async def burst():
            return await asyncio.gather(
                service.handle(dict(SELECT, id="a", cache="bypass")),
                service.handle(dict(SELECT, id="b", cache="bypass")),
            )

        responses = asyncio.run(burst())
        assert all(r["ok"] for r in responses)
        assert service.computed == 2  # both computed independently
        assert service.inflight.deduped == 0


class TestCacheControl:
    def test_default_serves_warm_results(self):
        service = DesignService()
        handle(service, SELECT)
        warm_misses = service.engine.cache.stats.misses
        handle(service, SELECT)
        assert service.engine.cache.stats.misses == warm_misses
        assert service.engine.cache.stats.hits > 0

    def test_refresh_recomputes_and_overwrites(self):
        service = DesignService()
        first = handle(service, SELECT)
        stored = len(service.engine.cache)
        refreshed = handle(service, dict(SELECT, cache="refresh"))
        assert service.computed == 2  # warm entries were not consulted
        assert len(service.engine.cache) == stored  # overwritten in place
        assert canonical(first["result"]) == canonical(refreshed["result"])

    def test_bypass_leaves_the_shared_store_untouched(self):
        service = DesignService()
        response = handle(service, dict(SELECT, cache="bypass"))
        assert response["ok"]
        assert len(service.engine.cache) == 0  # nothing written through


class TestBatching:
    def test_concurrent_runs_merge_into_one_pass(self, vopd_app):
        inner = ExplorationEngine()
        batching = BatchingEngine(inner, window_s=0.25)
        jobs_a = [_job(vopd_app, "mesh"), _job(vopd_app, "torus")]
        jobs_b = [_job(vopd_app, "hypercube")]
        results: dict[str, list] = {}

        def submit(name, jobs):
            results[name] = batching.run(jobs)

        threads = [
            threading.Thread(target=submit, args=("a", jobs_a)),
            threading.Thread(target=submit, args=("b", jobs_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert batching.batches == 1  # one merged inner pass
        assert batching.batched_requests == 2
        assert batching.largest_batch == 2
        # Slices map back to their own submissions, bit-identically.
        direct = ExplorationEngine().run(jobs_a + jobs_b)
        merged = results["a"] + results["b"]
        assert [r.tag for r in merged] == [r.tag for r in direct]
        for got, want in zip(merged, direct):
            assert got.evaluation.cost == want.evaluation.cost
            assert got.evaluation.assignment == want.evaluation.assignment

    def test_sequential_runs_do_not_wait_for_each_other(self, vopd_app):
        batching = BatchingEngine(ExplorationEngine(), window_s=0)
        first = batching.run([_job(vopd_app, "mesh")])
        second = batching.run([_job(vopd_app, "mesh")])
        assert batching.batches == 2
        assert first[0].evaluation.cost == second[0].evaluation.cost
        assert second[0].cached  # same engine cache underneath

    def test_empty_run_is_a_noop(self):
        batching = BatchingEngine(ExplorationEngine(), window_s=0)
        assert batching.run([]) == []
        assert batching.batches == 0


class TestTransport:
    def test_streaming_round_trip_with_errors(self):
        async def scenario():
            service = DesignService()
            server = await service.start(port=0)
            port = server.sockets[0].getsockname()[1]
            payloads = [
                dict(CAMPAIGN, id="good"),
                {"v": 1, "id": "bad", "kind": "select", "params": {}},
            ]
            responses = [
                r async for r in submit_async(payloads, port=port)
            ]
            server.close()
            await server.wait_closed()
            return responses

        responses = asyncio.run(scenario())
        by_id = {r["id"]: r for r in responses}
        assert by_id["good"]["ok"]
        assert not by_id["bad"]["ok"]
        assert by_id["bad"]["error"]["type"] == "ContractError"

    def test_invalid_json_line_gets_an_error_envelope(self):
        async def scenario():
            service = DesignService()
            server = await service.start(port=0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"this is not json\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            server.close()
            await server.wait_closed()
            return json.loads(line)

        response = asyncio.run(scenario())
        assert not response["ok"]
        assert "invalid JSON" in response["error"]["message"]


class TestCrossProcessWarmStart:
    def test_second_process_does_zero_evaluations(self, tmp_path):
        """The acceptance bar: process 2 answers entirely from disk."""
        db = tmp_path / "evals.db"
        script = (
            "import asyncio, json, sys\n"
            "from repro.service import DesignService\n"
            "service = DesignService(cache_backend=f'sqlite:{sys.argv[1]}')\n"
            "request = json.loads(sys.argv[2])\n"
            "response = asyncio.run(service.handle(request))\n"
            "stats = service.engine.cache.stats\n"
            "print(json.dumps({'response': response,\n"
            "                  'hits': stats.hits, 'misses': stats.misses}))\n"
        )

        def run_once() -> dict:
            out = subprocess.run(
                [sys.executable, "-c", script, str(db), json.dumps(SELECT)],
                capture_output=True, text=True, timeout=300,
                env=_child_env(), check=True,
            )
            return json.loads(out.stdout)

        cold = run_once()
        warm = run_once()
        assert cold["response"]["ok"] and warm["response"]["ok"]
        assert cold["misses"] > 0 and cold["hits"] == 0
        assert warm["misses"] == 0  # zero evaluations in process 2
        assert warm["hits"] == cold["misses"]
        assert canonical(cold["response"]["result"]) == canonical(
            warm["response"]["result"]
        )


def _job(app, topology_name: str) -> EvaluationJob:
    topology = make_topology(topology_name, app.num_cores)
    return EvaluationJob(core_graph=app, topology=topology, tag=topology.name)


def _child_env() -> dict:
    import os

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env
