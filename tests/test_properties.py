"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.synthetic import random_core_graph
from repro.core.constraints import Constraints
from repro.core.evaluate import evaluate_mapping
from repro.core.exploration import ParetoPoint, pareto_front
from repro.core.greedy import initial_greedy_mapping
from repro.routing.library import make_routing
from repro.routing.loads import EdgeLoads
from repro.topology.library import make_topology
from repro.topology.torus import cyclic_arc

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# cyclic arcs
# ----------------------------------------------------------------------
@given(
    a=st.integers(0, 9),
    b=st.integers(0, 9),
    size=st.integers(3, 10),
    wraps=st.booleans(),
)
def test_cyclic_arc_endpoints_and_bounds(a, b, size, wraps):
    a %= size
    b %= size
    arc = cyclic_arc(a, b, size, wraps)
    assert arc[0] == a and arc[-1] == b
    assert all(0 <= x < size for x in arc)
    assert len(set(arc)) == len(arc)  # no repeats


@given(a=st.integers(0, 9), b=st.integers(0, 9), size=st.integers(3, 10))
def test_cyclic_arc_never_longer_than_direct(a, b, size):
    a %= size
    b %= size
    wrapped = cyclic_arc(a, b, size, wraps=True)
    direct = cyclic_arc(a, b, size, wraps=False)
    assert len(wrapped) <= len(direct)


# ----------------------------------------------------------------------
# EdgeLoads
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5),
                  st.floats(0.1, 100.0)),
        min_size=1,
        max_size=30,
    )
)
def test_edge_loads_total_is_sum(entries):
    loads = EdgeLoads()
    expected = 0.0
    for u, v, value in entries:
        loads.add(("n", u), ("n", v), value)
        expected += value
    assert math.isclose(loads.total, expected, rel_tol=1e-9)
    assert loads.max_load() <= loads.total + 1e-9


# ----------------------------------------------------------------------
# Pareto front
# ----------------------------------------------------------------------
points_strategy = st.lists(
    st.tuples(st.floats(1.0, 100.0), st.floats(1.0, 100.0)),
    min_size=1,
    max_size=40,
)


@given(points_strategy)
def test_pareto_front_is_non_dominated_and_complete(raw):
    points = [
        ParetoPoint(area_mm2=a, power_mw=p, avg_hops=0.0, assignment=(i,))
        for i, (a, p) in enumerate(raw)
    ]
    front = pareto_front(points)
    assert front
    # No front member is dominated by any point.
    for f in front:
        assert not any(p.dominates(f) for p in points)
    # Every non-front point is dominated by some front member or ties.
    for p in points:
        if p not in front:
            assert any(
                f.dominates(p) or (f.area_mm2 == p.area_mm2
                                   and f.power_mw == p.power_mw)
                for f in front
            )


# ----------------------------------------------------------------------
# greedy mapping + routing on random applications
# ----------------------------------------------------------------------
app_params = st.tuples(
    st.integers(4, 10),   # cores
    st.integers(0, 1000),  # seed
)


@SLOW
@given(app_params, st.sampled_from(["mesh", "torus", "hypercube", "clos"]))
def test_greedy_mapping_is_injective_on_random_apps(params, topo_name):
    n_cores, seed = params
    app = random_core_graph(n_cores, seed=seed)
    topo = make_topology(topo_name, n_cores)
    assignment = initial_greedy_mapping(app, topo)
    assert set(assignment) == set(range(n_cores))
    slots = list(assignment.values())
    assert len(set(slots)) == len(slots)


@SLOW
@given(app_params, st.sampled_from(["MP", "SM", "SA"]))
def test_routing_conserves_flow_on_random_apps(params, code):
    n_cores, seed = params
    app = random_core_graph(n_cores, seed=seed)
    topo = make_topology("mesh", n_cores)
    assignment = initial_greedy_mapping(app, topo)
    result = make_routing(code).route_all(
        topo, assignment, app.commodities()
    )
    for rc in result.routed:
        assert rc.validate_conservation()
        for path, bw in rc.paths:
            assert bw > 0
            for u, v in zip(path, path[1:]):
                assert topo.graph.has_edge(u, v)


@SLOW
@given(app_params)
def test_evaluation_metrics_sane_on_random_apps(params):
    n_cores, seed = params
    app = random_core_graph(n_cores, seed=seed)
    topo = make_topology("mesh", n_cores)
    assignment = initial_greedy_mapping(app, topo)
    ev = evaluate_mapping(
        app, topo, assignment, make_routing("MP"),
        Constraints().relaxed(), with_floorplan=False,
    )
    assert ev.avg_hops >= 2.0  # two switches minimum per flow
    assert ev.max_link_load > 0
    assert ev.bandwidth_feasible  # relaxed constraints


@SLOW
@given(app_params)
def test_floorplan_legal_on_random_apps(params):
    from repro.floorplan.lp import floorplan_mapping

    n_cores, seed = params
    app = random_core_graph(n_cores, seed=seed)
    topo = make_topology("mesh", n_cores)
    assignment = initial_greedy_mapping(app, topo)
    fp = floorplan_mapping(topo, assignment, app)
    fp.validate()
    assert fp.area_mm2 >= app.total_core_area()


# ----------------------------------------------------------------------
# hop distances
# ----------------------------------------------------------------------
@given(
    st.sampled_from(["mesh", "torus", "hypercube", "ring"]),
    st.integers(0, 11),
    st.integers(0, 11),
)
def test_direct_topology_distance_symmetry(topo_name, s, d):
    topo = make_topology(topo_name, 12)
    s %= topo.num_slots
    d %= topo.num_slots
    assert topo.hop_distance(s, d) == topo.hop_distance(d, s)


@given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 15))
def test_mesh_triangle_inequality(a, b, c):
    topo = make_topology("mesh", 16)
    ab = topo.hop_distance(a, b)
    bc = topo.hop_distance(b, c)
    ac = topo.hop_distance(a, c)
    # Switch-count distances: concatenating routes shares switch b.
    if a != b and b != c:
        assert ac <= ab + bc - 1
