"""FaultedTopology overlay: masking, re-convergence, fingerprints."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError, UnroutableError
from repro.faults import (
    FaultSet,
    FaultedTopology,
    partitioned_pairs,
    sample_degradations,
    sample_faults,
)
from repro.engine.fingerprint import topology_fingerprint
from repro.simulation.routes import RouteTable
from repro.topology.base import is_term, switch as sw
from repro.topology.library import make_topology

FAULTABLE = ("mesh", "torus", "clos", "butterfly", "ring")
#: Topologies defining dimension-ordered routing (direct dor_path tests).
DOR_TOPOLOGIES = ("mesh", "torus", "hypercube")

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _dead_edges(faulted: FaultedTopology) -> set:
    dead = set()
    for u, v in faulted.faults.dead_links:
        dead.add((u, v))
        dead.add((v, u))
    return dead


class TestOverlayStructure:
    def test_dead_elements_absent_from_graph(self):
        base = make_topology("mesh", 12)
        faults = sample_faults(base, 2, seed=1)
        faulted = FaultedTopology(base, faults)
        for edge in _dead_edges(faulted):
            assert not faulted.graph.has_edge(*edge)
        # The base is untouched.
        for edge in _dead_edges(faulted):
            assert base.graph.has_edge(*edge)

    def test_name_embeds_fault_digest(self):
        base = make_topology("mesh", 12)
        faults = sample_faults(base, 1, seed=1)
        faulted = FaultedTopology(base, faults)
        assert faulted.name == f"{base.name}+{faults.label}"

    def test_nesting_rejected(self):
        base = make_topology("mesh", 12)
        faulted = FaultedTopology(base, sample_faults(base, 1))
        with pytest.raises(TopologyError):
            FaultedTopology(faulted, FaultSet())

    def test_unknown_references_rejected(self):
        base = make_topology("mesh", 12)
        bogus = (sw("nowhere-a"), sw("nowhere-b"))
        with pytest.raises(TopologyError):
            FaultedTopology(base, FaultSet(dead_links=(bogus,)))
        with pytest.raises(TopologyError):
            FaultedTopology(base, FaultSet(dead_switches=(sw("ghost"),)))
        with pytest.raises(TopologyError):
            FaultedTopology(base, FaultSet(degraded=((bogus, 0.5, 1),)))

    def test_degradations_annotate_surviving_edges(self):
        base = make_topology("mesh", 12)
        faults = sample_degradations(base, 2, seed=1, cap_factor=0.5,
                                     extra_latency=3)
        faulted = FaultedTopology(base, faults)
        degr = faulted.channel_degradations()
        assert degr is not None
        # Both directions of each degraded pair are annotated.
        assert len(degr) == 4
        for edge, (cap, extra) in degr.items():
            assert faulted.graph.has_edge(*edge)
            assert cap == 0.5 and extra == 3

    def test_pristine_overlay_has_no_degradations(self):
        base = make_topology("mesh", 12)
        faulted = FaultedTopology(base, FaultSet())
        assert faulted.channel_degradations() is None


class TestFingerprints:
    def test_fault_variants_never_alias(self):
        base = make_topology("mesh", 12)
        prints = {topology_fingerprint(base)}
        for seed in (1, 2, 3):
            faulted = FaultedTopology(base, sample_faults(base, 2, seed=seed))
            prints.add(topology_fingerprint(faulted))
        degraded = FaultedTopology(base, sample_degradations(base, 2, seed=1))
        prints.add(topology_fingerprint(degraded))
        # mesh-3x4 has distinct 2-link draws for these seeds, so every
        # variant (and the pristine base) fingerprints differently.
        assert len(prints) == 5

    def test_empty_fault_set_keeps_base_name_and_is_stable(self):
        base = make_topology("mesh", 12)
        faulted = FaultedTopology(base, FaultSet())
        # No "+pristine" suffix, and the fingerprint is reproducible.
        assert faulted.name == base.name
        again = FaultedTopology(make_topology("mesh", 12), FaultSet())
        assert topology_fingerprint(faulted) == topology_fingerprint(again)


class TestRoutingReconvergence:
    @SLOW
    @given(
        name=st.sampled_from(DOR_TOPOLOGIES),
        k=st.integers(1, 2),
        seed=st.integers(1, 50),
    )
    def test_routes_avoid_dead_links_and_reach_endpoints(
        self, name, k, seed
    ):
        base = make_topology(name, 12)
        try:
            faults = sample_faults(base, k, seed=seed)
        except TopologyError:
            return  # fabric too sparse for this k: nothing to check
        faulted = FaultedTopology(base, faults)
        dead = _dead_edges(faulted)
        assert partitioned_pairs(faulted) == []
        n = faulted.num_slots
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                path = faulted.dor_path(src, dst)
                assert is_term(path[0]) and is_term(path[-1])
                hops = list(zip(path, path[1:]))
                assert all(e not in dead for e in hops)
                assert all(faulted.graph.has_edge(*e) for e in hops)

    @SLOW
    @given(name=st.sampled_from(FAULTABLE), seed=st.integers(1, 50))
    def test_route_table_covers_all_pairs_under_faults(self, name, seed):
        base = make_topology(name, 12)
        try:
            faults = sample_faults(base, 2, seed=seed)
        except TopologyError:
            return  # fabric too sparse for two dead links
        faulted = FaultedTopology(base, faults)
        table = RouteTable(faulted)
        dead = _dead_edges(faulted)
        n = faulted.num_slots
        for src in range(n):
            inject = next(iter(faulted.graph.successors(("term", src))))
            for dst in range(n):
                if src == dst:
                    continue
                # Walk the table hop by hop to the destination.
                node = inject
                steps = 0
                while node != ("term", dst):
                    nxt = table.candidates(node, dst)[0]
                    assert (node, nxt) not in dead
                    node = nxt
                    steps += 1
                    assert steps <= 64, "routing loop"

    def test_unroutable_iff_partitioned(self):
        base = make_topology("mesh", 12)
        # Kill both links of corner switch 0: its terminal is provably
        # severed from everything else.
        corner_cut = FaultSet(
            dead_links=((sw(0), sw(1)), (sw(0), sw(4)))
        )
        faulted = FaultedTopology(base, corner_cut)
        severed = partitioned_pairs(faulted)
        assert severed, "corner cut must sever the corner terminal"
        severed_set = set(severed)
        n = faulted.num_slots
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                if (src, dst) in severed_set:
                    with pytest.raises(UnroutableError):
                        faulted.dor_path(src, dst)
                else:
                    path = faulted.dor_path(src, dst)
                    assert path[0] == ("term", src)
                    assert path[-1] == ("term", dst)

    def test_simulator_honors_degradation(self):
        """Degraded channels (half capacity, extra per-hop cycles) must
        raise measured latency relative to the pristine fabric."""
        from repro.simulation.stats import run_measurement
        from repro.simulation.traffic import build_traffic

        base = make_topology("mesh", 12)
        faults = sample_degradations(
            base, 4, seed=1, cap_factor=0.25, extra_latency=3
        )
        faulted = FaultedTopology(base, faults)
        traffic = build_traffic("uniform", 0.2, 7)
        pristine = run_measurement(
            base, traffic, warmup=200, measure=800, drain=600
        )
        degraded = run_measurement(
            faulted, traffic, warmup=200, measure=800, drain=600
        )
        assert degraded.avg_latency > pristine.avg_latency

    def test_dead_links_still_deliver_traffic(self):
        from repro.simulation.stats import run_measurement
        from repro.simulation.traffic import build_traffic

        base = make_topology("mesh", 12)
        faulted = FaultedTopology(base, sample_faults(base, 2, seed=1))
        traffic = build_traffic("uniform", 0.15, 7)
        stats = run_measurement(
            faulted, traffic, warmup=200, measure=800, drain=600
        )
        assert stats.delivered_fraction > 0.99

    def test_surviving_base_routes_kept_verbatim(self):
        base = make_topology("mesh", 12)
        faults = sample_faults(base, 1, seed=1)
        faulted = FaultedTopology(base, faults)
        dead = _dead_edges(faulted)
        kept = rerouted = 0
        n = base.num_slots
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                pristine = base.dor_path(src, dst)
                if all(e not in dead for e in zip(pristine, pristine[1:])):
                    assert faulted.dor_path(src, dst) == pristine
                    kept += 1
                else:
                    rerouted += 1
        assert kept > 0 and rerouted > 0
