"""Regressions for the silent-failure bugs fixed alongside fault injection.

Three distinct bugs shared one failure mode — swallowing a problem
instead of surfacing it:

* ``xpipes/generator.py`` skipped unreachable destinations with a bare
  ``except Exception: continue``, silently truncating routing tables
  (and hiding any *other* failure in table construction);
* ``cli.py main()`` let transport-level ``OSError`` escape as a raw
  traceback instead of a clean one-line diagnosis;
* ``detect_saturation`` zip-truncated mismatched sweeps and could pick a
  congested point as the zero-load latency baseline.
"""

from __future__ import annotations

import math

import pytest

from repro.faults import FaultedTopology, FaultSet
from repro.simulation.campaign import detect_saturation
from repro.topology.base import switch as sw
from repro.topology.library import make_topology
from repro.xpipes.generator import generate_systemc
from repro.xpipes.netlist import build_netlist


class TestXpipesUnreachableSentinel:
    def _severed_netlist(self, vopd_app):
        base = make_topology("mesh", 12)
        # Corner switch 0 loses both links: slot 0 is unreachable from
        # every other switch (and vice versa), but the netlist itself
        # is still emittable.
        faulted = FaultedTopology(
            base,
            FaultSet(dead_links=((sw(0), sw(1)), (sw(0), sw(4)))),
        )
        assignment = {i: i for i in range(12)}
        return faulted, build_netlist(vopd_app, faulted, assignment)

    def test_unreachable_destination_emits_sentinel(self, vopd_app):
        faulted, netlist = self._severed_netlist(vopd_app)
        code = generate_systemc(netlist, faulted)
        # Unreachable destinations appear as explicit {dst, -1} rows
        # instead of being silently dropped.
        assert "{0, -1}" in code

    def test_tables_stay_complete_for_reachable_pairs(self, vopd_app):
        faulted, netlist = self._severed_netlist(vopd_app)
        code = generate_systemc(netlist, faulted)
        # Every switch still emits a routing table line.
        assert code.count("_route[][2]") == 12

    def test_unrelated_errors_propagate(self, vopd_app, monkeypatch):
        """Only routing-layer misses get the sentinel; anything else
        must abort generation loudly."""
        from repro.simulation.routes import RouteTable

        faulted, netlist = self._severed_netlist(vopd_app)

        def boom(self, node, dst):
            raise RuntimeError("table corrupted")

        monkeypatch.setattr(RouteTable, "candidates", boom)
        with pytest.raises(RuntimeError, match="table corrupted"):
            generate_systemc(netlist, faulted)


class TestCliOsErrorHandling:
    def test_oserror_yields_clean_exit(self, capsys, monkeypatch):
        import repro.cli as cli

        def explode(args):
            raise OSError(98, "address already in use")

        monkeypatch.setitem(cli._COMMANDS, "apps", explode)
        assert cli.main(["apps"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "address already in use" in err
        assert "Traceback" not in err

    def test_broken_pipe_still_exits_zero(self, monkeypatch):
        # BrokenPipeError is an OSError subclass; the pager case must
        # keep winning despite the new OSError handler.
        import io
        import repro.cli as cli

        def pipe_gone(args):
            raise BrokenPipeError()

        monkeypatch.setitem(cli._COMMANDS, "apps", pipe_gone)
        # The handler closes stdout (the pipe is gone anyway); hand it
        # a throwaway stream so pytest's capture survives.
        monkeypatch.setattr(cli.sys, "stdout", io.StringIO())
        assert cli.main(["apps"]) == 0


class TestDetectSaturationRegressions:
    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="equal-length"):
            detect_saturation((0.1, 0.2), (10.0,), (1.0, 1.0))
        with pytest.raises(ValueError, match="equal-length"):
            detect_saturation((0.1,), (10.0,), (1.0, 0.9))

    def test_baseline_skips_saturated_first_point(self):
        # The first point already collapsed: its finite latency is a
        # congestion artifact and must not serve as the baseline. The
        # sweep saturates at that first rate regardless.
        assert detect_saturation(
            (0.1, 0.2, 0.3),
            (200.0, 10.0, 12.0),
            (0.5, 1.0, 1.0),
        ) == 0.1

    def test_baseline_from_first_healthy_point(self):
        # First healthy point (rate 0.2, latency 10) is the baseline;
        # rate 0.4 blows past 4x10 and is flagged.
        assert detect_saturation(
            (0.1, 0.2, 0.3, 0.4),
            (300.0, 10.0, 12.0, 50.0),
            (0.8, 1.0, 1.0, 0.95),
        ) == 0.1  # delivery already collapsed at 0.1
        assert detect_saturation(
            (0.2, 0.3, 0.4),
            (10.0, 12.0, 50.0),
            (1.0, 1.0, 0.95),
        ) == 0.4

    def test_all_points_unbounded(self):
        assert detect_saturation((0.1,), (math.inf,), (1.0,)) == 0.1

    def test_healthy_sweep_has_no_saturation(self):
        assert detect_saturation(
            (0.1, 0.2), (10.0, 11.0), (1.0, 1.0)
        ) is None
