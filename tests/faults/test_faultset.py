"""FaultSet value semantics and deterministic fault samplers."""

from __future__ import annotations

import math

import pytest

from repro.errors import TopologyError
from repro.faults import (
    FaultSet,
    link_resilience,
    sample_degradations,
    sample_faults,
    sample_switch_faults,
    survives_link_faults,
)
from repro.topology.base import switch as sw
from repro.topology.library import make_topology


@pytest.fixture(scope="module")
def mesh12():
    return make_topology("mesh", 12)


@pytest.fixture(scope="module")
def clos12():
    return make_topology("clos", 12)


class TestFaultSetValue:
    def test_empty_is_pristine(self):
        fs = FaultSet()
        assert fs.is_empty
        assert fs.label == "pristine"

    def test_normalization_makes_order_irrelevant(self):
        a = sw((0, 0))
        b = sw((0, 1))
        c = sw((1, 1))
        fs1 = FaultSet(dead_links=((a, b), (b, c)))
        fs2 = FaultSet(dead_links=((c, b), (b, a), (a, b)))
        assert fs1 == fs2
        assert fs1.digest == fs2.digest
        assert hash(fs1) == hash(fs2)

    def test_label_encodes_counts_and_digest(self):
        a, b, c = sw((0, 0)), sw((0, 1)), sw((1, 1))
        fs = FaultSet(
            dead_links=((a, b),),
            dead_switches=(c,),
            degraded=(((b, c), 0.5, 1),),
        )
        assert fs.label.startswith("faults-L1S1D1-")
        assert fs.digest in fs.label

    def test_different_content_different_digest(self):
        a, b, c = sw((0, 0)), sw((0, 1)), sw((1, 1))
        fs1 = FaultSet(dead_links=((a, b),))
        fs2 = FaultSet(dead_links=((b, c),))
        assert fs1.digest != fs2.digest

    @pytest.mark.parametrize("cap", [0.0, -0.5, 1.5])
    def test_bad_cap_factor_rejected(self, cap):
        with pytest.raises(TopologyError):
            FaultSet(degraded=(((sw((0, 0)), sw((0, 1))), cap, 0),))

    def test_negative_extra_latency_rejected(self):
        with pytest.raises(TopologyError):
            FaultSet(degraded=(((sw((0, 0)), sw((0, 1))), 0.5, -1),))

    def test_dead_and_degraded_conflict_rejected(self):
        pair = (sw((0, 0)), sw((0, 1)))
        with pytest.raises(TopologyError):
            FaultSet(dead_links=(pair,), degraded=((pair, 0.5, 0),))

    def test_duplicate_degradation_rejected(self):
        pair = (sw((0, 0)), sw((0, 1)))
        flipped = (pair[1], pair[0])
        with pytest.raises(TopologyError):
            FaultSet(degraded=((pair, 0.5, 0), (flipped, 0.25, 1)))


class TestSamplers:
    def test_link_sampler_is_deterministic(self, mesh12):
        fs1 = sample_faults(mesh12, 2, seed=7)
        fs2 = sample_faults(mesh12, 2, seed=7)
        assert fs1 == fs2
        assert len(fs1.dead_links) == 2

    def test_seed_changes_the_draw(self, mesh12):
        draws = {sample_faults(mesh12, 2, seed=s) for s in range(1, 6)}
        assert len(draws) > 1

    def test_zero_faults_is_pristine(self, mesh12):
        assert sample_faults(mesh12, 0).is_empty
        assert sample_switch_faults(mesh12, 0).is_empty
        assert sample_degradations(mesh12, 0).is_empty

    def test_too_many_faults_rejected(self, mesh12):
        with pytest.raises(TopologyError):
            sample_faults(mesh12, 10_000)
        with pytest.raises(TopologyError):
            sample_faults(mesh12, -1)

    def test_switch_sampler_needs_transit_switches(self, mesh12, clos12):
        # Every mesh switch carries a terminal, so there is nothing to
        # kill without severing that terminal.
        with pytest.raises(TopologyError):
            sample_switch_faults(mesh12, 1)
        fs = sample_switch_faults(clos12, 1, seed=3)
        assert len(fs.dead_switches) == 1

    def test_degradation_sampler_parameters(self, mesh12):
        fs = sample_degradations(
            mesh12, 3, seed=2, cap_factor=0.25, extra_latency=4
        )
        assert len(fs.degraded) == 3
        for _pair, cap, extra in fs.degraded:
            assert cap == 0.25
            assert extra == 4


class TestResilience:
    def test_mesh_resilience(self, mesh12):
        assert link_resilience(mesh12) == 2.0
        assert survives_link_faults(mesh12, 1)
        assert not survives_link_faults(mesh12, 2)

    def test_switch_chain_has_cut_links(self):
        from repro.topology.custom import CustomTopology

        chain = CustomTopology(
            name="chain",
            slot_switch=[0, 0, 1, 1, 2, 2],
            links=[(0, 1), (1, 2)],
        )
        assert link_resilience(chain) == 1.0
        assert not survives_link_faults(chain, 1)

    def test_single_switch_fabric_is_infinitely_resilient(self):
        from repro.topology.custom import CustomTopology

        one = CustomTopology(
            name="one-switch", slot_switch=[0, 0, 0, 0], links=[]
        )
        assert link_resilience(one) == math.inf
        assert survives_link_faults(one, 99)
