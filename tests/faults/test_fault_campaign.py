"""Fault axis through campaigns, synthesis, service, and CLI."""

from __future__ import annotations

import pytest

from repro.apps import vopd
from repro.core.greedy import initial_greedy_mapping
from repro.errors import SimulationError, TopologyError
from repro.faults import link_resilience, survives_link_faults
from repro.service.contract import (
    CONTRACT_VERSION,
    ContractError,
    parse_request,
)
from repro.simulation.campaign import (
    CampaignConfig,
    campaign_fault_variants,
    campaign_jobs,
    run_campaign,
    strip_runtime,
)
from repro.synthesis.fabric import CandidateSpec, build_candidate
from repro.synthesis.generate import SynthesisConfig, synthesize_topologies
from repro.topology.library import make_topology

TINY = dict(warmup=100, measure=400, drain=300)


def _mesh_setup():
    app = vopd()
    topology = make_topology("mesh", app.num_cores)
    assignment = initial_greedy_mapping(app, topology)
    return app, topology, assignment


class TestCampaignFaultConfig:
    def test_fault_seeds_normalized_away_when_no_faults(self):
        config = CampaignConfig(faults=0, fault_seeds=(1, 2, 3))
        assert config.fault_seeds == ()
        assert config == CampaignConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(faults=-1),
            dict(faults=1, fault_seeds=()),
            dict(faults=1, fault_seeds=(1, 1)),
        ],
    )
    def test_invalid_fault_axis_rejected(self, kwargs):
        with pytest.raises((SimulationError, ValueError)):
            CampaignConfig(**kwargs)

    def test_num_points_multiplies_by_fault_variants(self):
        base = CampaignConfig(rates=(0.1, 0.2), patterns=("uniform",),
                              seeds=(1,))
        faulted = CampaignConfig(
            rates=(0.1, 0.2), patterns=("uniform",), seeds=(1,),
            faults=1, fault_seeds=(1, 2, 3),
        )
        assert faulted.num_points == 3 * base.num_points

    def test_fault_variants_are_deterministic(self):
        topology = make_topology("mesh", 12)
        config = CampaignConfig(faults=2, fault_seeds=(1, 2))
        v1 = campaign_fault_variants(topology, config)
        v2 = campaign_fault_variants(topology, config)
        assert [(fs, t.name) for fs, t in v1] == [
            (fs, t.name) for fs, t in v2
        ]
        names = {t.name for _, t in v1}
        assert len(names) == 2
        assert all("faults-L2-" in n for n in names)

    def test_pristine_config_yields_identity_variant(self):
        topology = make_topology("mesh", 12)
        variants = campaign_fault_variants(topology, CampaignConfig())
        assert len(variants) == 1
        assert variants[0][0] is None
        assert variants[0][1] is topology


class TestFaultCampaignRuns:
    def test_fault_campaign_serial_parallel_bit_identical(self):
        """Acceptance: the fault axis sweeps through the engine with
        jobs=1 and jobs=N producing bit-identical results."""
        app, topology, assignment = _mesh_setup()
        config = CampaignConfig(
            rates=(0.1, 0.3),
            patterns=("app",),
            seeds=(1,),
            faults=1,
            fault_seeds=(1, 2),
            **TINY,
        )
        serial = run_campaign(
            topology, app, assignment, config=config, jobs=1
        )
        parallel = run_campaign(
            topology, app, assignment, config=config, jobs=2
        )
        assert strip_runtime(serial.to_dict()) == strip_runtime(
            parallel.to_dict()
        )

    def test_points_tag_their_fault_seed(self):
        app, topology, assignment = _mesh_setup()
        config = CampaignConfig(
            rates=(0.1,), patterns=("app",), seeds=(1,),
            faults=1, fault_seeds=(1, 2), **TINY,
        )
        result = run_campaign(topology, app, assignment, config=config)
        assert sorted({p.fault_seed for p in result.points}) == [1, 2]
        d = result.to_dict()
        assert d["config"]["faults"] == 1
        assert d["config"]["fault_seeds"] == [1, 2]
        assert all("fault_seed" in p for p in d["points"])
        assert "fault variants" in result.summary()

    def test_pristine_campaign_dict_has_no_fault_keys(self):
        app, topology, assignment = _mesh_setup()
        config = CampaignConfig(
            rates=(0.1,), patterns=("app",), seeds=(1,), **TINY
        )
        d = run_campaign(
            topology, app, assignment, config=config
        ).to_dict()
        assert "faults" not in d["config"]
        assert "fault_seeds" not in d["config"]
        assert all("fault_seed" not in p for p in d["points"])

    def test_fault_jobs_get_distinct_tags(self):
        app, topology, assignment = _mesh_setup()
        config = CampaignConfig(
            rates=(0.1,), patterns=("app",), seeds=(1,),
            faults=1, fault_seeds=(1, 2), **TINY,
        )
        jobs = campaign_jobs(
            topology, config, core_graph=app, assignment=assignment
        )
        tags = [job.tag for job in jobs]
        assert len(tags) == len(set(tags)) == 2
        assert any(tag.endswith("/f1") for tag in tags)
        assert any(tag.endswith("/f2") for tag in tags)
        names = {job.topology.name for job in jobs}
        assert len(names) == 2
        assert all("+faults-L1-" in name for name in names)


class TestFaultTolerantSynthesis:
    def test_ft_spec_label_and_feasibility(self, vopd_app):
        plain = CandidateSpec("greedy", 3, 4, 4, 500.0)
        protected = CandidateSpec("greedy", 3, 4, 4, 500.0,
                                  fault_tolerance=1)
        assert plain.label == "syn-greedy-s3c4d4"
        assert protected.label == "syn-greedy-s3c4d4-ft1"
        fabric = build_candidate(vopd_app, protected)
        assert survives_link_faults(fabric, 1)

    def test_ft_fabric_beats_unprotected_resilience(self, vopd_app):
        """Acceptance: k-connectivity synthesis yields candidates that
        survive k=1 where the unprotected winner does not."""
        base_cfg = dict(
            strategies=("greedy",), concentrations=(4,),
            max_switch_degrees=(4,), max_candidates=4,
        )
        plain = synthesize_topologies(
            vopd_app, config=SynthesisConfig(**base_cfg)
        )
        protected = synthesize_topologies(
            vopd_app,
            config=SynthesisConfig(**base_cfg, fault_tolerance=1),
        )
        assert plain.best is not None and protected.best is not None
        assert not survives_link_faults(plain.best.topology, 1)
        assert survives_link_faults(protected.best.topology, 1)
        assert link_resilience(protected.best.topology) > link_resilience(
            plain.best.topology
        )

    def test_infeasible_protection_raises(self, vopd_app):
        # Two clusters cannot survive a dead link with only one link.
        spec = CandidateSpec("greedy", 2, 8, 1, 500.0, fault_tolerance=1)
        with pytest.raises(TopologyError):
            build_candidate(vopd_app, spec)


class TestServiceFaultParams:
    def _parse(self, kind, params):
        return parse_request(
            {"v": CONTRACT_VERSION, "kind": kind, "params": params}
        )

    def test_campaign_fault_defaults(self):
        req = self._parse("campaign", {"app": "vopd", "topology": "mesh"})
        assert req.params["faults"] == 0
        assert req.params["fault_seeds"] == [1]

    def test_campaign_fault_params_accepted(self):
        req = self._parse(
            "campaign",
            {"app": "vopd", "topology": "mesh", "faults": 2,
             "fault_seeds": [3, 4]},
        )
        assert req.params["faults"] == 2
        assert req.params["fault_seeds"] == [3, 4]

    @pytest.mark.parametrize(
        "bad",
        [
            {"faults": -1},
            {"faults": "two"},
            {"fault_seeds": []},
            {"fault_seeds": [1.5]},
        ],
    )
    def test_campaign_bad_fault_params_rejected(self, bad):
        with pytest.raises(ContractError):
            self._parse(
                "campaign",
                {"app": "vopd", "topology": "mesh", **bad},
            )

    @pytest.mark.parametrize("kind", ["select", "synthesize"])
    def test_fault_tolerance_defaults_and_bounds(self, kind):
        req = self._parse(kind, {"app": "vopd"})
        assert req.params["fault_tolerance"] == 0
        req = self._parse(kind, {"app": "vopd", "fault_tolerance": 2})
        assert req.params["fault_tolerance"] == 2
        with pytest.raises(ContractError):
            self._parse(kind, {"app": "vopd", "fault_tolerance": -1})


class TestCliFaults:
    def test_simulate_single_point_with_faults(self, capsys):
        from repro.cli import main

        assert main([
            "simulate", "--app", "vopd", "--topology", "mesh",
            "--faults", "2", "--fault-seeds", "1", "--rate", "0.1",
            "--cycles", "400", "--warmup", "100", "--drain", "400",
        ]) == 0
        out = capsys.readouterr().out
        assert "faults-L2-" in out

    def test_campaign_with_fault_axis(self, capsys):
        from repro.cli import main

        assert main([
            "simulate", "--app", "vopd", "--topology", "mesh",
            "--rates", "0.1", "--patterns", "app",
            "--faults", "1", "--fault-seeds", "1,2",
            "--cycles", "400", "--warmup", "100", "--drain", "400",
        ]) == 0
        out = capsys.readouterr().out
        assert "fault variants" in out

    def test_synthesize_fault_tolerance_flag(self, capsys):
        from repro.cli import main

        assert main([
            "synthesize", "--app", "vopd", "--strategies", "greedy",
            "--concentrations", "4", "--degrees", "4",
            "--fault-tolerance", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "-ft1" in out
