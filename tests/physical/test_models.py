"""Area/power model unit tests (paper Section 5)."""

import pytest

from repro.physical.library import AreaPowerLibrary
from repro.physical.link_power import (
    link_dynamic_power_mw,
    link_leakage_power_mw,
)
from repro.physical.switch_area import (
    SwitchConfig,
    buffer_area_um2,
    channel_area_mm2,
    crossbar_area_um2,
    logic_area_um2,
    switch_area_mm2,
)
from repro.physical.switch_power import (
    switch_clock_power_mw,
    switch_dynamic_power_mw,
    switch_energy_pj_per_bit,
    switch_leakage_power_mw,
)
from repro.physical.technology import TECH_100NM, scaled_technology


class TestSwitchConfig:
    def test_bad_ports_rejected(self):
        with pytest.raises(ValueError):
            SwitchConfig(0, 4)
        with pytest.raises(ValueError):
            SwitchConfig(4, 4, flit_width_bits=0)

    def test_radix(self):
        assert SwitchConfig(3, 5).radix == 5


class TestAreaModel:
    def test_area_components_positive(self):
        cfg = SwitchConfig(5, 5)
        assert crossbar_area_um2(cfg) > 0
        assert buffer_area_um2(cfg) > 0
        assert logic_area_um2(cfg) > 0

    def test_area_monotone_in_ports(self):
        areas = [switch_area_mm2(SwitchConfig(p, p)) for p in range(2, 9)]
        assert areas == sorted(areas)
        assert areas[-1] > areas[0]

    def test_area_monotone_in_buffer_depth(self):
        shallow = switch_area_mm2(SwitchConfig(5, 5, buffer_depth_flits=4))
        deep = switch_area_mm2(SwitchConfig(5, 5, buffer_depth_flits=64))
        assert deep > shallow

    def test_crossbar_scales_with_port_product(self):
        a33 = crossbar_area_um2(SwitchConfig(3, 3))
        a66 = crossbar_area_um2(SwitchConfig(6, 6))
        assert a66 == pytest.approx(4 * a33)

    def test_5x5_switch_area_plausible_at_100nm(self):
        """Landing zone for an xpipes-class 32-bit switch."""
        area = switch_area_mm2(SwitchConfig(5, 5))
        assert 0.1 < area < 0.5

    def test_channel_area_linear_in_length(self):
        one = channel_area_mm2(1.0)
        three = channel_area_mm2(3.0)
        assert three == pytest.approx(3 * one)


class TestPowerModel:
    def test_energy_monotone_in_ports(self):
        energies = [
            switch_energy_pj_per_bit(SwitchConfig(p, p)) for p in range(2, 9)
        ]
        assert energies == sorted(energies)

    def test_dynamic_power_linear_in_traffic(self):
        cfg = SwitchConfig(5, 5)
        p1 = switch_dynamic_power_mw(cfg, 100.0)
        p5 = switch_dynamic_power_mw(cfg, 500.0)
        assert p5 == pytest.approx(5 * p1)

    def test_static_power_positive(self):
        cfg = SwitchConfig(4, 4)
        assert switch_clock_power_mw(cfg) > 0
        assert switch_leakage_power_mw(cfg) > 0

    def test_link_power_linear_in_length_and_traffic(self):
        assert link_dynamic_power_mw(100.0, 2.0) == pytest.approx(
            2 * link_dynamic_power_mw(100.0, 1.0)
        )
        assert link_dynamic_power_mw(200.0, 1.0) == pytest.approx(
            2 * link_dynamic_power_mw(100.0, 1.0)
        )
        assert link_leakage_power_mw(3.0) == pytest.approx(
            3 * link_leakage_power_mw(1.0)
        )

    def test_link_energy_much_lower_than_switch(self):
        """Paper: 'link power dissipation is much lower than the switch
        power dissipation' (per bit, typical 2 mm link)."""
        link_pj = TECH_100NM.link_energy_pj_per_bit_mm * 2.0
        switch_pj = switch_energy_pj_per_bit(SwitchConfig(4, 4))
        assert switch_pj > 5 * link_pj


class TestLibrary:
    def test_entries_cached(self):
        lib = AreaPowerLibrary()
        e1 = lib.entry(SwitchConfig(4, 4))
        e2 = lib.entry(SwitchConfig(4, 4))
        assert e1 is e2

    def test_table_rows(self):
        lib = AreaPowerLibrary()
        rows = lib.table(max_radix=6)
        assert len(rows) == 5
        assert all(r.area_mm2 > 0 for r in rows)


class TestScaling:
    def test_scaling_to_smaller_node_shrinks_area_and_energy(self):
        t65 = scaled_technology(0.065)
        assert t65.sram_bit_area_um2 < TECH_100NM.sram_bit_area_um2
        assert t65.e_buffer_write_pj < TECH_100NM.e_buffer_write_pj

    def test_scaling_identity(self):
        t = scaled_technology(0.10)
        assert t.sram_bit_area_um2 == pytest.approx(
            TECH_100NM.sram_bit_area_um2
        )

    def test_bad_feature_size(self):
        with pytest.raises(ValueError):
            scaled_technology(0.0)

    def test_vdd_floor(self):
        t = scaled_technology(0.02)
        assert t.vdd_v >= 0.7
