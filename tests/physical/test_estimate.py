"""Network-level estimation tests."""

import pytest

from repro.core.coregraph import CoreGraph
from repro.routing.library import make_routing
from repro.topology.library import make_topology


@pytest.fixture
def routed_mesh():
    g = CoreGraph("x")
    for i in range(6):
        g.add_core(f"c{i}")
    g.add_flow("c0", "c5", 400.0)
    g.add_flow("c1", "c4", 200.0)
    topo = make_topology("mesh", 6)
    result = make_routing("MP").route_all(
        topo, {i: i for i in range(6)}, g.commodities()
    )
    return topo, result


class TestUsedSwitches:
    def test_direct_topology_uses_all(self, routed_mesh, estimator):
        topo, result = routed_mesh
        assert estimator.used_switches(topo, result) == set(topo.switches)

    def test_indirect_topology_prunes(self, estimator):
        g = CoreGraph("x")
        for i in range(4):
            g.add_core(f"c{i}")
        g.add_flow("c0", "c1", 100.0)
        topo = make_topology("butterfly", 9)  # 3-ary 2-fly
        result = make_routing("MP").route_all(
            topo, {0: 0, 1: 1, 2: 2, 3: 3}, g.commodities()
        )
        used = estimator.used_switches(topo, result)
        assert len(used) < len(topo.switches)


class TestPower:
    def test_power_positive_and_decomposed(self, routed_mesh, estimator):
        topo, result = routed_mesh
        b = estimator.network_power_mw(topo, result)
        assert b.switch_dynamic > 0
        assert b.link_dynamic > 0
        assert b.clock > 0
        assert b.leakage > 0
        assert b.total_mw == pytest.approx(
            b.switch_dynamic + b.link_dynamic + b.clock + b.leakage
        )

    def test_more_traffic_more_power(self, estimator):
        def build(scale):
            g = CoreGraph("x")
            for i in range(6):
                g.add_core(f"c{i}")
            g.add_flow("c0", "c5", 100.0 * scale)
            topo = make_topology("mesh", 6)
            result = make_routing("MP").route_all(
                topo, {i: i for i in range(6)}, g.commodities()
            )
            return estimator.network_power_mw(topo, result).total_mw

        assert build(4) > build(1)

    def test_floorplan_lengths_override_nominal(self, routed_mesh, estimator):
        topo, result = routed_mesh
        short = {e: 0.1 for e in topo.graph.edges()}
        long = {e: 5.0 for e in topo.graph.edges()}
        p_short = estimator.network_power_mw(topo, result, lengths_mm=short)
        p_long = estimator.network_power_mw(topo, result, lengths_mm=long)
        assert p_long.link_dynamic > p_short.link_dynamic

    def test_switch_area_totals(self, routed_mesh, estimator):
        topo, result = routed_mesh
        area = estimator.switches_area_mm2(topo, result)
        assert 0.5 < area < 5.0  # 6 small switches

    def test_channel_area_grows_with_pitch(self, routed_mesh, estimator):
        topo, result = routed_mesh
        a1 = estimator.channels_area_mm2(topo, result, pitch_mm=1.0)
        a2 = estimator.channels_area_mm2(topo, result, pitch_mm=2.0)
        assert a2 > a1
