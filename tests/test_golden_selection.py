"""Golden regression tests pinning paper-faithful selection outcomes.

For every (application, objective) pair in the grid below, the full
``run_sunmap`` selection (with routing-fallback escalation) must keep
producing the committed winner and escalation sequence — e.g. MPEG4
falling back from minimum-path to split routing (Section 6.1) — so a
mapper, routing or estimator change that silently shifts a paper result
fails loudly here.

Regenerate the goldens deliberately with::

    PYTHONPATH=src python -m pytest tests/test_golden_selection.py \
        --update-goldens

and review the diff of ``tests/golden/selection.json`` like any other
code change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.apps import load_application
from repro.sunmap import run_sunmap

GOLDEN_PATH = Path(__file__).parent / "golden" / "selection.json"

#: The asserted grid. Every application and every objective appears;
#: combinations are chosen to keep the suite's runtime reasonable
#: (netproc maps slowly, so it pins the headline hops objective only).
GRID = [
    ("vopd", "hops"),
    ("vopd", "bandwidth"),
    ("mpeg4", "hops"),
    ("dsp", "hops"),
    ("dsp", "area"),
    ("dsp", "power"),
    ("dsp", "bandwidth"),
    ("netproc", "hops"),
]


def _outcome(app_name: str, objective: str) -> dict:
    report = run_sunmap(
        load_application(app_name), objective=objective, generate=False
    )
    return {
        "best": report.best_topology_name,
        "attempted_routings": report.attempted_routings,
        "selected_routing": report.selection.routing_code,
        "feasible": sorted(report.selection.feasible),
    }


@pytest.fixture(scope="module")
def goldens() -> dict:
    if not GOLDEN_PATH.exists():
        return {}
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.mark.parametrize(
    ("app_name", "objective"), GRID, ids=[f"{a}-{o}" for a, o in GRID]
)
def test_selection_matches_golden(request, goldens, app_name, objective):
    key = f"{app_name}/{objective}"
    outcome = _outcome(app_name, objective)
    if request.config.getoption("--update-goldens"):
        stored = (
            json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
            if GOLDEN_PATH.exists()
            else {}
        )
        stored[key] = outcome
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(stored, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return
    assert key in goldens, (
        f"no golden for {key}; run pytest with --update-goldens and "
        f"commit {GOLDEN_PATH}"
    )
    assert outcome == goldens[key], (
        f"selection outcome for {key} drifted from the committed golden "
        f"(rerun with --update-goldens only if the change is intended)"
    )


def test_mpeg4_escalates_from_minimum_path_to_split(goldens):
    """The paper's Section 6.1 narrative, pinned explicitly: MPEG4 has
    no feasible minimum-path mapping, so the flow escalates to split
    routing."""
    golden = goldens.get("mpeg4/hops")
    if golden is None:
        pytest.skip("goldens not generated yet")
    assert golden["attempted_routings"][0] == "MP"
    assert len(golden["attempted_routings"]) > 1
    assert golden["selected_routing"] != "MP"
