"""Rendering edge cases for repro.report."""

from repro.core.mapper import MapperConfig
from repro.core.selector import SelectionResult, select_topology
from repro.floorplan.lp import floorplan_mapping
from repro.report import render_floorplan, selection_to_markdown
from repro.topology.library import make_topology

FAST = MapperConfig(converge=False, swap_rounds=1)


class TestRenderFloorplan:
    def test_butterfly_floorplan_renders(self, dsp_app):
        topo = make_topology("butterfly", 6)
        assignment = {i: i for i in range(6)}
        fp = floorplan_mapping(topo, assignment, dsp_app)
        text = render_floorplan(fp, dsp_app)
        assert "fft" in text
        # Canvas lines stay within requested width.
        for line in text.splitlines()[1:]:
            assert len(line) <= 68

    def test_custom_canvas_size(self, dsp_app):
        topo = make_topology("mesh", 6)
        assignment = {i: i for i in range(6)}
        fp = floorplan_mapping(topo, assignment, dsp_app)
        text = render_floorplan(fp, dsp_app, width=40, height=12)
        assert len(text.splitlines()) == 13  # header + 12 rows

    def test_no_core_graph_uses_indices(self, dsp_app):
        topo = make_topology("mesh", 6)
        assignment = {i: i for i in range(6)}
        fp = floorplan_mapping(topo, assignment, dsp_app)
        text = render_floorplan(fp, core_graph=None)
        assert "c0" in text


class TestMarkdownEdgeCases:
    def test_no_feasible_winner(self, tiny_app):
        from repro.core.constraints import Constraints

        selection = select_topology(
            tiny_app,
            routing="MP",
            constraints=Constraints(link_capacity_mb_s=1.0),
            config=FAST,
        )
        md = selection_to_markdown(selection)
        assert "**x**" not in md
        assert md.count("| no |") >= 5

    def test_empty_selection(self):
        selection = SelectionResult(objective_name="hops", routing_code="MP")
        md = selection_to_markdown(selection)
        assert md.startswith("| topology |")
