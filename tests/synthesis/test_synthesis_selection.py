"""Synthesis determinism and golden regression tests.

Two guarantees pinned here:

* **Determinism across parallelism** — the same core graph +
  :class:`~repro.synthesis.SynthesisConfig` + seed reproduces the
  identical candidate set bit-for-bit at ``jobs=1`` and ``jobs=4``
  (engine cache keys are content-derived, reduction is by submission
  order), for both the standalone sweep and the synthesize-enabled
  selection flow.
* **Golden candidate sets** — the ranked vopd/dsp candidates (names,
  feasibility, costs) stay exactly what was committed; regenerate
  deliberately with ``--update-goldens`` and review the diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.apps import load_application
from repro.core.selector import select_topology
from repro.engine.engine import ExplorationEngine
from repro.synthesis import SynthesisConfig, synthesize_topologies

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "synthesis.json"

#: Small sweep used by the parallel-identity tests (fast, still >1 job).
SMALL = SynthesisConfig(
    strategies=("greedy", "bisect"),
    concentrations=(3, 4),
    max_switch_degrees=(4,),
    max_candidates=4,
)


def _candidate_record(result) -> list[dict]:
    """Bit-exact comparable digest of a synthesis result."""
    return [
        {
            "name": cand.name,
            "feasible": cand.feasible,
            "cost": cand.cost,
            "avg_hops": (
                None if cand.evaluation is None else cand.evaluation.avg_hops
            ),
            "power_mw": (
                None if cand.evaluation is None else cand.evaluation.power_mw
            ),
            "max_link_load": (
                None
                if cand.evaluation is None
                else cand.evaluation.max_link_load
            ),
            "assignment": (
                None
                if cand.evaluation is None
                else sorted(cand.evaluation.assignment.items())
            ),
            "error": cand.error,
        }
        for cand in result.ranked
    ]


class TestParallelIdentity:
    def test_jobs1_equals_jobs4_synthesize(self, vopd_app):
        serial = synthesize_topologies(vopd_app, config=SMALL, jobs=1)
        parallel = synthesize_topologies(vopd_app, config=SMALL, jobs=4)
        assert _candidate_record(serial) == _candidate_record(parallel)

    def test_jobs1_equals_jobs4_selection(self, vopd_app):
        outcomes = []
        for jobs in (1, 4):
            selection = select_topology(
                vopd_app, routing="MP", jobs=jobs, synthesize=SMALL
            )
            outcomes.append(
                (
                    selection.best_name,
                    selection.synthesized,
                    {
                        name: (ev.cost, ev.avg_hops, ev.power_mw)
                        for name, ev in selection.evaluations.items()
                    },
                    selection.errors,
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_engine_cache_serves_repeat_sweep(self, vopd_app):
        engine = ExplorationEngine()
        synthesize_topologies(vopd_app, config=SMALL, engine=engine)
        hits_before = engine.cache.stats.hits
        again = synthesize_topologies(vopd_app, config=SMALL, engine=engine)
        assert engine.cache.stats.hits > hits_before
        assert all(c.evaluation is not None or c.error for c in again.candidates)


@pytest.fixture(scope="module")
def goldens() -> dict:
    if not GOLDEN_PATH.exists():
        return {}
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


GRID = [("vopd", "hops"), ("dsp", "hops"), ("mpeg4", "power")]


@pytest.mark.parametrize(
    ("app_name", "objective"), GRID, ids=[f"{a}-{o}" for a, o in GRID]
)
def test_synthesis_matches_golden(request, goldens, app_name, objective):
    key = f"{app_name}/{objective}"
    result = synthesize_topologies(
        load_application(app_name), objective=objective
    )
    outcome = {
        "best": None if result.best is None else result.best.name,
        "candidates": [
            {
                "name": cand.name,
                "feasible": cand.feasible,
                "cost": None if cand.evaluation is None else round(cand.cost, 6),
            }
            for cand in result.ranked
        ],
    }
    if request.config.getoption("--update-goldens"):
        stored = (
            json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
            if GOLDEN_PATH.exists()
            else {}
        )
        stored[key] = outcome
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(stored, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return
    assert key in goldens, (
        f"no golden for {key}; run pytest with --update-goldens and "
        f"commit {GOLDEN_PATH}"
    )
    assert outcome == goldens[key], (
        f"synthesis outcome for {key} drifted from the committed golden "
        f"(rerun with --update-goldens only if the change is intended)"
    )


def test_synthesized_candidate_beats_library_on_vopd(vopd_app):
    """The subsystem's reason to exist, pinned: on vopd a synthesized
    fabric must achieve an objective cost no worse than the best
    standard-library topology under identical constraints."""
    library = select_topology(vopd_app, routing="MP", objective="hops")
    synthesized = synthesize_topologies(
        vopd_app, routing="MP", objective="hops"
    )
    assert library.best is not None
    assert synthesized.best is not None
    assert synthesized.best.cost <= library.best.cost
