"""Property-based tests (hypothesis) for topology-synthesis invariants.

On random applications, for every partition strategy and a sweep of
concentration/degree bounds:

* every core lands in exactly one cluster, no cluster oversized;
* the synthesized fabric is connected, has one terminal slot per core,
  and respects the configured network-degree bound per switch
  (parallel channels each count);
* the fabric survives a full ``evaluate_mapping`` — routing,
  feasibility checks, floorplan, power — like any library topology;
* fat links carry explicit multiplicities and are honestly reflected in
  switch port counts.
"""

from __future__ import annotations

import math

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.synthetic import random_core_graph
from repro.core.constraints import Constraints
from repro.core.evaluate import evaluate_mapping
from repro.routing.library import make_routing
from repro.synthesis import (
    PARTITION_STRATEGIES,
    CandidateSpec,
    build_candidate,
    intended_assignment,
    make_partition,
)

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

app_params = st.tuples(
    st.integers(4, 12),    # cores
    st.integers(0, 1000),  # seed
)

strategy_st = st.sampled_from(sorted(PARTITION_STRATEGIES))


def _spec(strategy, n_cores, concentration, degree) -> CandidateSpec:
    return CandidateSpec(
        strategy=strategy,
        num_switches=max(1, math.ceil(n_cores / concentration)),
        max_cluster_size=concentration,
        max_switch_degree=degree,
        link_capacity_mb_s=500.0,
    )


@given(app_params, strategy_st, st.integers(2, 4))
@SLOW
def test_partition_covers_every_core_once(params, strategy, concentration):
    n_cores, seed = params
    app = random_core_graph(n_cores, seed=seed)
    clusters = make_partition(
        strategy,
        app,
        max(1, math.ceil(n_cores / concentration)),
        concentration,
    )
    flat = sorted(c for cluster in clusters for c in cluster)
    assert flat == list(range(n_cores))
    assert all(len(cluster) <= concentration for cluster in clusters)


@given(app_params, strategy_st, st.integers(2, 4), st.integers(2, 8))
@SLOW
def test_fabric_structure_invariants(params, strategy, concentration, degree):
    n_cores, seed = params
    app = random_core_graph(n_cores, seed=seed)
    spec = _spec(strategy, n_cores, concentration, degree)
    topo = build_candidate(app, spec)

    # One terminal slot per core.
    assert topo.num_slots == n_cores
    # Connected: every terminal reaches every other terminal.
    g = topo.graph
    assert nx.is_strongly_connected(g)
    # Network degree per switch (channels, multiplicity counted) within
    # the configured bound; switch_ports reflects channels + core slots.
    mults = topo.link_multiplicity()
    concentration_map = topo.concentration()
    for sw in topo.switches:
        sid = sw[1]
        channels = sum(
            m for (a, b), m in mults.items() if sid in (a, b)
        )
        assert channels <= spec.max_switch_degree
        n_in, n_out = topo.switch_ports(sw)
        expected = channels + concentration_map.get(sid, 0)
        assert n_in == expected
        assert n_out == expected


@given(app_params, strategy_st)
@SLOW
def test_fabric_survives_full_evaluation(params, strategy):
    n_cores, seed = params
    app = random_core_graph(n_cores, seed=seed)
    spec = _spec(strategy, n_cores, concentration=3, degree=6)
    topo = build_candidate(app, spec)
    clusters = make_partition(
        strategy, app, spec.num_switches, spec.max_cluster_size,
        bw_budget=spec.max_switch_degree * spec.link_capacity_mb_s,
    )
    evaluation = evaluate_mapping(
        app,
        topo,
        intended_assignment(clusters),
        make_routing("MP"),
        Constraints(),
    )
    assert evaluation.avg_hops >= 1.0
    assert evaluation.power_mw is not None and evaluation.power_mw > 0
    assert evaluation.routing_result.loads.total > 0


@given(app_params, strategy_st, st.integers(2, 4), st.integers(2, 8))
@SLOW
def test_build_is_deterministic(params, strategy, concentration, degree):
    n_cores, seed = params
    app = random_core_graph(n_cores, seed=seed)
    spec = _spec(strategy, n_cores, concentration, degree)
    a = build_candidate(app, spec)
    b = build_candidate(app, spec)
    assert a.slot_switch == b.slot_switch
    assert a.link_multiplicity() == b.link_multiplicity()
    assert a.switch_positions() == b.switch_positions()
