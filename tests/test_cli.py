"""CLI smoke and behaviour tests (each subcommand end to end)."""

import pytest

from repro.cli import main


class TestListing:
    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for name in ("vopd", "mpeg4", "dsp", "netproc"):
            assert name in out

    def test_topologies(self, capsys):
        assert main(["topologies", "--cores", "12"]) == 0
        out = capsys.readouterr().out
        assert "mesh-3x4" in out
        assert "butterfly-4ary2fly" in out

    def test_topologies_reports_unavailable(self, capsys):
        assert main(["topologies", "--cores", "16"]) == 0
        out = capsys.readouterr().out
        assert "octagon" in out and "not available" in out

    def test_library(self, capsys):
        assert main(["library", "--max-radix", "5"]) == 0
        out = capsys.readouterr().out
        assert "area mm2" in out and "5x" in out


class TestMapAndSelect:
    def test_map_dsp_mesh(self, capsys):
        assert main([
            "map", "--app", "dsp", "--topology", "mesh",
            "--capacity", "1000",
        ]) == 0
        out = capsys.readouterr().out
        assert "assignment:" in out
        assert "arm" in out

    def test_select_dsp(self, capsys):
        assert main([
            "select", "--app", "dsp", "--capacity", "1000",
        ]) == 0
        out = capsys.readouterr().out
        assert "best:" in out
        assert "butterfly" in out

    def test_select_with_fallback(self, capsys):
        assert main([
            "select", "--app", "dsp", "--fallback",
        ]) == 0
        out = capsys.readouterr().out
        assert "attempted" in out

    def test_bad_app_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["select", "--app", "doom"])

    def test_map_requires_topology_or_file(self, capsys):
        assert main(["map", "--app", "dsp"]) == 1
        assert "--topology" in capsys.readouterr().err


class TestSynthesize:
    def test_synthesize_dsp(self, capsys):
        assert main(["synthesize", "--app", "dsp"]) == 0
        out = capsys.readouterr().out
        assert "syn-" in out
        assert "best:" in out

    def test_synthesize_save_and_reuse(self, capsys, tmp_path):
        path = tmp_path / "fabric.json"
        assert main([
            "synthesize", "--app", "vopd", "--save-topology", str(path),
            "--strategies", "greedy", "--concentrations", "4",
            "--degrees", "4",
        ]) == 0
        assert path.exists()
        capsys.readouterr()
        # The saved fabric maps and generates without re-synthesis.
        assert main([
            "map", "--app", "vopd", "--topology-file", str(path),
        ]) == 0
        assert "assignment:" in capsys.readouterr().out
        assert main([
            "generate", "--app", "vopd", "--topology-file", str(path),
        ]) == 0
        assert "sc_main" in capsys.readouterr().out

    def test_select_synthesize_races_library(self, capsys):
        assert main([
            "select", "--app", "vopd", "--synthesize", "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "mesh-3x4" in out  # library still in the table
        assert "syn-" in out      # synthesized candidates race it

    def test_select_topology_file_joins_library(self, capsys, tmp_path):
        path = tmp_path / "fabric.json"
        assert main([
            "synthesize", "--app", "dsp", "--save-topology", str(path),
        ]) == 0
        capsys.readouterr()
        assert main([
            "select", "--app", "dsp", "--capacity", "1000",
            "--topology-file", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "butterfly" in out and "syn-" in out


class TestSimulateAndGenerate:
    def test_simulate(self, capsys):
        assert main([
            "simulate", "--app", "netproc", "--topology", "clos",
            "--rate", "0.1", "--cycles", "800", "--warmup", "200",
            "--drain", "800",
        ]) == 0
        out = capsys.readouterr().out
        assert "avg latency" in out

    def test_simulate_named_pattern(self, capsys):
        assert main([
            "simulate", "--app", "netproc", "--topology", "mesh",
            "--rate", "0.05", "--pattern", "uniform",
            "--cycles", "600", "--warmup", "200", "--drain", "600",
        ]) == 0
        assert "mesh" in capsys.readouterr().out

    def test_simulate_campaign(self, capsys):
        assert main([
            "simulate", "--app", "dsp", "--topology", "mesh",
            "--rates", "0.1,0.4", "--patterns", "app,uniform",
            "--seeds", "1", "--cycles", "600", "--warmup", "200",
            "--drain", "600", "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "campaign: dsp-filter" in out
        assert "saturation rates" in out

    def test_simulate_campaign_markdown(self, capsys):
        assert main([
            "simulate", "--app", "dsp", "--topology", "mesh",
            "--rates", "0.1", "--patterns", "uniform,adversarial",
            "--cycles", "400", "--warmup", "100", "--drain", "400",
            "--markdown",
        ]) == 0
        out = capsys.readouterr().out
        assert "| pattern |" in out
        assert "bit_reverse" in out  # mesh's adversarial permutation

    def test_simulate_campaign_bad_rates(self, capsys):
        code = main([
            "simulate", "--app", "dsp", "--topology", "mesh",
            "--rates", "0.4,0.1",
        ])
        assert code == 1
        assert "increasing" in capsys.readouterr().err

    def test_simulate_campaign_malformed_rates(self, capsys):
        code = main([
            "simulate", "--app", "dsp", "--topology", "mesh",
            "--rates", "0.1,abc",
        ])
        assert code == 1
        assert "comma-separated" in capsys.readouterr().err

    def test_simulate_campaign_adversarial_alias_deduped(self, capsys):
        # On mesh, 'adversarial' resolves to bit_reverse; listing both
        # must not double-count the pattern.
        assert main([
            "simulate", "--app", "dsp", "--topology", "mesh",
            "--rates", "0.1", "--patterns", "bit_reverse,adversarial",
            "--cycles", "400", "--warmup", "100", "--drain", "400",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("bit_reverse ") == 1  # one curve row, not two

    def test_generate_to_file(self, capsys, tmp_path):
        out_file = tmp_path / "dsp.cpp"
        assert main([
            "generate", "--app", "dsp", "--topology", "butterfly",
            "--capacity", "1000", "--output", str(out_file),
        ]) == 0
        assert out_file.exists()
        text = out_file.read_text()
        assert "sc_main" in text

    def test_generate_infeasible_returns_error(self, capsys):
        code = main([
            "generate", "--app", "mpeg4", "--topology", "butterfly",
            "--capacity", "500",
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_explore_dsp(self, capsys):
        assert main([
            "explore", "--app", "dsp", "--topology", "mesh",
            "--capacity", "1000",
        ]) == 0
        out = capsys.readouterr().out
        assert "DO" in out and "SA" in out
        assert "Pareto" in out
