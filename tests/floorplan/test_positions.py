"""Relative-position derivation (columns) from topology + mapping."""

import pytest

from repro.errors import FloorplanError
from repro.floorplan.positions import _chunk_columns, derive_columns
from repro.topology.library import make_topology


def identity(n: int) -> dict:
    return {i: i for i in range(n)}


class TestChunking:
    def test_empty(self):
        assert _chunk_columns([], 4) == []

    def test_balanced_split(self):
        cols = _chunk_columns(list(range(6)), 4)
        assert [len(c) for c in cols] == [3, 3]

    def test_no_split_needed(self):
        cols = _chunk_columns(list(range(3)), 4)
        assert [len(c) for c in cols] == [3]


class TestDirectColumns:
    def test_mesh_columns_match_grid(self, vopd_app):
        topo = make_topology("mesh", 12)  # 3x4
        columns = derive_columns(topo, identity(12), vopd_app)
        assert len(columns) == 4  # one per mesh column
        for col in columns:
            cores = [b for b in col if b.key[0] == "core"]
            switches = [b for b in col if b.key[0] == "sw"]
            assert len(cores) == 3 and len(switches) == 3

    def test_all_blocks_present_once(self, vopd_app):
        topo = make_topology("mesh", 12)
        columns = derive_columns(topo, identity(12), vopd_app)
        keys = [b.key for col in columns for b in col]
        assert len(keys) == len(set(keys)) == 24

    def test_unmapped_slots_have_no_core_blocks(self, dsp_app):
        topo = make_topology("hypercube", 6)  # 8 slots, 6 cores
        columns = derive_columns(topo, identity(6), dsp_app)
        cores = [b for col in columns for b in col if b.key[0] == "core"]
        switches = [b for col in columns for b in col if b.key[0] == "sw"]
        assert len(cores) == 6
        assert len(switches) == 8

    def test_duplicate_slot_rejected(self, dsp_app):
        topo = make_topology("mesh", 6)
        with pytest.raises(FloorplanError):
            derive_columns(topo, {i: 0 for i in range(6)}, dsp_app)


class TestIndirectColumns:
    def test_butterfly_layout_follows_figure_10b(self, dsp_app):
        """Cores split left/right around the switch-stage columns."""
        topo = make_topology("butterfly", 6)  # 3-ary 2-fly
        columns = derive_columns(topo, identity(6), dsp_app)
        kinds = [
            {b.key[0] for b in col} for col in columns
        ]
        assert kinds[0] == {"core"}
        assert kinds[-1] == {"core"}
        assert {"sw"} in kinds

    def test_pruned_switches_excluded(self, dsp_app):
        topo = make_topology("butterfly", 6)
        used = set(topo.switches[:2])
        columns = derive_columns(
            topo, identity(6), dsp_app, used_switches=used
        )
        switches = [b for col in columns for b in col if b.key[0] == "sw"]
        assert len(switches) == 2

    def test_clos_three_stage_columns(self, vopd_app):
        topo = make_topology("clos", 12)
        columns = derive_columns(topo, identity(12), vopd_app)
        switch_cols = [
            col for col in columns if all(b.key[0] == "sw" for b in col)
        ]
        assert len(switch_cols) == 3
