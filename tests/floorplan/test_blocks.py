"""Floorplan block model."""

import pytest

from repro.errors import FloorplanError
from repro.floorplan.blocks import Block, BlockRect


class TestBlock:
    def test_soft_width_bounds_follow_aspect(self):
        b = Block(key=("core", 0), name="a", area_mm2=4.0,
                  aspect_min=0.25, aspect_max=4.0)
        assert b.width_min == pytest.approx(1.0)
        assert b.width_max == pytest.approx(4.0)

    def test_hard_block_is_square(self):
        b = Block(key=("sw", 0), name="s", area_mm2=0.25, is_soft=False)
        assert b.width_min == b.width_max == pytest.approx(0.5)

    def test_bad_area_rejected(self):
        with pytest.raises(FloorplanError):
            Block(key=("core", 0), name="a", area_mm2=0.0)

    def test_bad_aspect_rejected(self):
        with pytest.raises(FloorplanError):
            Block(key=("core", 0), name="a", area_mm2=1.0,
                  aspect_min=2.0, aspect_max=1.0)


class TestBlockRect:
    def rect(self, x, y, w=1.0, h=1.0):
        b = Block(key=("core", 0), name="a", area_mm2=w * h)
        return BlockRect(block=b, x=x, y=y, w=w, h=h)

    def test_center(self):
        r = self.rect(1.0, 2.0, 2.0, 4.0)
        assert r.center == (2.0, 4.0)

    def test_area(self):
        assert self.rect(0, 0, 2.0, 3.0).area_mm2 == pytest.approx(6.0)

    def test_overlap_detection(self):
        a = self.rect(0.0, 0.0, 2.0, 2.0)
        b = self.rect(1.0, 1.0, 2.0, 2.0)
        c = self.rect(2.0, 0.0, 1.0, 1.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # touching edges do not overlap
        assert not b.overlaps(c)
