"""LP floorplanner legality and quality."""

import pytest

from repro.floorplan.lp import floorplan_mapping
from repro.topology.library import make_topology


def identity(n: int) -> dict:
    return {i: i for i in range(n)}


@pytest.fixture(
    params=["mesh", "torus", "hypercube", "clos", "butterfly", "star"]
)
def floorplan(request, vopd_app):
    topo = make_topology(request.param, 12)
    fp = floorplan_mapping(topo, identity(12), vopd_app)
    return topo, fp


class TestLegality:
    def test_validate_passes(self, floorplan):
        _topo, fp = floorplan
        fp.validate()  # raises on any violation

    def test_no_overlaps(self, floorplan):
        _topo, fp = floorplan
        rects = list(fp.rects.values())
        for i, a in enumerate(rects):
            for b in rects[i + 1 :]:
                assert not a.overlaps(b)

    def test_soft_areas_conserved(self, floorplan):
        _topo, fp = floorplan
        for rect in fp.rects.values():
            assert rect.area_mm2 >= rect.block.area_mm2 - 1e-6

    def test_blocks_inside_chip(self, floorplan):
        _topo, fp = floorplan
        for rect in fp.rects.values():
            assert rect.x >= -1e-9 and rect.y >= -1e-9
            assert rect.x + rect.w <= fp.width_mm + 1e-6
            assert rect.y + rect.h <= fp.height_mm + 1e-6

    def test_aspect_bounds_respected(self, floorplan):
        _topo, fp = floorplan
        for rect in fp.rects.values():
            block = rect.block
            if block.is_soft:
                ratio = rect.w / rect.h
                assert block.aspect_min - 1e-6 <= ratio <= block.aspect_max + 1e-6

    def test_area_at_least_total_block_area(self, floorplan):
        _topo, fp = floorplan
        assert fp.area_mm2 >= fp.block_area_mm2

    def test_whitespace_reasonable(self, floorplan):
        _topo, fp = floorplan
        assert fp.whitespace_fraction < 0.5


class TestLinkLengths:
    def test_lengths_positive_and_bounded(self, floorplan, vopd_app):
        topo, fp = floorplan
        lengths = fp.link_lengths(topo, identity(12))
        diag = fp.width_mm + fp.height_mm
        assert lengths
        for length in lengths.values():
            assert 0 < length <= diag

    def test_bidirectional_links_have_equal_length(self, vopd_app):
        topo = make_topology("mesh", 12)
        fp = floorplan_mapping(topo, identity(12), vopd_app)
        lengths = fp.link_lengths(topo, identity(12))
        for (u, v), length in lengths.items():
            if (v, u) in lengths:
                assert lengths[(v, u)] == pytest.approx(length)

    def test_unmapped_terminal_edges_skipped(self, dsp_app):
        topo = make_topology("hypercube", 6)  # 8 slots
        fp = floorplan_mapping(topo, identity(6), dsp_app)
        lengths = fp.link_lengths(topo, identity(6))
        terms = {("term", 6), ("term", 7)}
        for u, v in lengths:
            assert u not in terms and v not in terms


class TestBehaviour:
    def test_deterministic(self, vopd_app):
        topo = make_topology("mesh", 12)
        fp1 = floorplan_mapping(topo, identity(12), vopd_app)
        fp2 = floorplan_mapping(topo, identity(12), vopd_app)
        assert fp1.area_mm2 == pytest.approx(fp2.area_mm2)

    def test_mapping_changes_link_lengths(self, vopd_app):
        topo = make_topology("mesh", 12)
        a1 = identity(12)
        a2 = dict(a1)
        a2[0], a2[11] = a2[11], a2[0]
        l1 = floorplan_mapping(topo, a1, vopd_app).link_lengths(topo, a1)
        l2 = floorplan_mapping(topo, a2, vopd_app).link_lengths(topo, a2)
        assert l1 != l2

    def test_torus_wrap_links_longer_than_mesh_average(self, vopd_app):
        torus = make_topology("torus", 12)
        fp = floorplan_mapping(torus, identity(12), vopd_app)
        lengths = fp.link_lengths(torus, identity(12))
        wrap = [
            lengths[(u, v)]
            for u, v, d in torus.graph.edges(data=True)
            if d.get("wrap") and (u, v) in lengths
        ]
        regular = [
            lengths[(u, v)]
            for u, v, d in torus.graph.edges(data=True)
            if d["kind"] == "net" and not d.get("wrap") and (u, v) in lengths
        ]
        assert sum(wrap) / len(wrap) > sum(regular) / len(regular)

    def test_tight_aspect_pads_to_square(self, vopd_app):
        """An aspect bound the packing can't meet is absorbed as
        whitespace (area cost) rather than failure."""
        topo = make_topology("mesh", 12)
        free = floorplan_mapping(topo, identity(12), vopd_app, max_aspect=None)
        square = floorplan_mapping(topo, identity(12), vopd_app, max_aspect=1.0)
        assert square.aspect_ratio == pytest.approx(1.0, abs=1e-6)
        assert square.area_mm2 >= free.area_mm2 - 1e-6
