"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.apps import dsp_filter, mpeg4, network_processor, vopd
from repro.core.coregraph import CoreGraph
from repro.physical.estimate import NetworkEstimator
from repro.topology.library import make_topology


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden selection-outcome files from the "
        "current implementation instead of asserting against them",
    )

#: Topologies exercised by generic invariant tests, sized for 12 cores.
GENERIC_TOPOLOGY_NAMES = (
    "mesh",
    "torus",
    "hypercube",
    "clos",
    "butterfly",
    "star",
    "ring",
)


@pytest.fixture(scope="session")
def vopd_app() -> CoreGraph:
    return vopd()


@pytest.fixture(scope="session")
def mpeg4_app() -> CoreGraph:
    return mpeg4()


@pytest.fixture(scope="session")
def dsp_app() -> CoreGraph:
    return dsp_filter()


@pytest.fixture(scope="session")
def netproc_app() -> CoreGraph:
    return network_processor()


@pytest.fixture(scope="session")
def estimator() -> NetworkEstimator:
    return NetworkEstimator()


@pytest.fixture(params=GENERIC_TOPOLOGY_NAMES)
def any_topology(request):
    """One instance of every library topology, sized for 12 cores."""
    return make_topology(request.param, 12)


@pytest.fixture
def tiny_app() -> CoreGraph:
    """Four cores, four flows — fast mapping tests."""
    g = CoreGraph("tiny")
    for i, area in enumerate((2.0, 3.0, 1.5, 2.5)):
        g.add_core(f"c{i}", area_mm2=area)
    g.add_flow("c0", "c1", 200.0)
    g.add_flow("c1", "c2", 150.0)
    g.add_flow("c2", "c3", 100.0)
    g.add_flow("c3", "c0", 50.0)
    return g
