"""Heterogeneous / irregular topology modeling (paper future work)."""

import pytest

from repro.core.constraints import Constraints
from repro.core.mapper import MapperConfig, map_onto
from repro.errors import TopologyError
from repro.topology.base import switch
from repro.topology.custom import CustomTopology


def dual_hub() -> CustomTopology:
    """Eight slots concentrated 4-per-hub, two parallel bridge links."""
    return CustomTopology(
        name="dual-hub",
        slot_switch=[0, 0, 0, 0, 1, 1, 1, 1],
        links=[(0, 1)],
    )


def irregular() -> CustomTopology:
    """A 5-switch irregular fabric with mixed concentration."""
    return CustomTopology(
        name="irregular-5sw",
        slot_switch=[0, 0, 1, 2, 3, 3, 4],
        links=[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)],
        positions={0: (0, 0), 1: (1, 0), 2: (2, 0), 3: (1, 1), 4: (0, 1)},
    )


class TestConstruction:
    def test_dual_hub_structure(self):
        topo = dual_hub()
        topo.validate()
        assert topo.num_slots == 8
        assert len(topo.switches) == 2
        assert topo.concentration() == {0: 4, 1: 4}

    def test_heterogeneous_switch_sizes(self):
        topo = irregular()
        sizes = {sw[1]: topo.switch_ports(sw) for sw in topo.switches}
        # Switch 0: 2 cores + 2 net neighbours = 4x4; switch 2: 1 core
        # + 2 net = 3x3 — genuinely heterogeneous.
        assert sizes[0] == (4, 4)
        assert sizes[2] == (3, 3)

    def test_disconnected_fabric_rejected(self):
        with pytest.raises(TopologyError):
            CustomTopology(
                name="split",
                slot_switch=[0, 0, 1, 1],
                links=[],  # two islands
            )

    def test_self_link_rejected(self):
        with pytest.raises(TopologyError):
            CustomTopology(
                name="selfy", slot_switch=[0, 0], links=[(0, 0)]
            )

    def test_single_slot_rejected(self):
        with pytest.raises(TopologyError):
            CustomTopology(name="one", slot_switch=[0], links=[])

    def test_missing_positions_rejected(self):
        with pytest.raises(TopologyError):
            CustomTopology(
                name="p",
                slot_switch=[0, 1],
                links=[(0, 1)],
                positions={0: (0.0, 0.0)},  # switch 1 missing
            )

    def test_default_positions_grid(self):
        topo = dual_hub()
        assert topo.position(switch(0)) != topo.position(switch(1))


class TestBehaviour:
    def test_same_hub_slots_are_one_hop(self):
        topo = dual_hub()
        assert topo.hop_distance(0, 1) == 1  # share the hub switch
        assert topo.hop_distance(0, 4) == 2  # across the bridge

    def test_quadrant_defaults_to_whole_graph(self):
        topo = dual_hub()
        assert topo.quadrant_nodes(0, 4) is None

    def test_mapping_end_to_end(self, tiny_app):
        topo = dual_hub()
        ev = map_onto(
            tiny_app,
            topo,
            routing="MP",
            objective="hops",
            constraints=Constraints(),
            config=MapperConfig(converge=False),
        )
        assert ev.feasible
        assert ev.floorplan is not None
        assert ev.power_mw > 0

    def test_generation_end_to_end(self, tiny_app):
        from repro.xpipes.netlist import build_netlist

        topo = irregular()
        assignment = {0: 0, 1: 2, 2: 3, 3: 6}
        netlist = build_netlist(tiny_app, topo, assignment)
        netlist.validate()
        assert len(netlist.switches) == 5

    def test_simulation_end_to_end(self):
        from repro.simulation import Network, SimConfig, SyntheticTraffic

        topo = irregular()
        net = Network(topo, SimConfig(seed=4))
        net.run(800, SyntheticTraffic("uniform", 0.05, seed=5))
        assert net.drain()
        assert net.injected_packets == len(net.delivered)
