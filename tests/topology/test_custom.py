"""Heterogeneous / irregular topology modeling (paper future work)."""

import pytest

from repro.core.constraints import Constraints
from repro.core.mapper import MapperConfig, map_onto
from repro.errors import TopologyError
from repro.topology.base import switch
from repro.topology.custom import CustomTopology


def dual_hub() -> CustomTopology:
    """Eight slots concentrated 4-per-hub, two parallel bridge links."""
    return CustomTopology(
        name="dual-hub",
        slot_switch=[0, 0, 0, 0, 1, 1, 1, 1],
        links=[(0, 1)],
    )


def irregular() -> CustomTopology:
    """A 5-switch irregular fabric with mixed concentration."""
    return CustomTopology(
        name="irregular-5sw",
        slot_switch=[0, 0, 1, 2, 3, 3, 4],
        links=[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)],
        positions={0: (0, 0), 1: (1, 0), 2: (2, 0), 3: (1, 1), 4: (0, 1)},
    )


class TestConstruction:
    def test_dual_hub_structure(self):
        topo = dual_hub()
        topo.validate()
        assert topo.num_slots == 8
        assert len(topo.switches) == 2
        assert topo.concentration() == {0: 4, 1: 4}

    def test_heterogeneous_switch_sizes(self):
        topo = irregular()
        sizes = {sw[1]: topo.switch_ports(sw) for sw in topo.switches}
        # Switch 0: 2 cores + 2 net neighbours = 4x4; switch 2: 1 core
        # + 2 net = 3x3 — genuinely heterogeneous.
        assert sizes[0] == (4, 4)
        assert sizes[2] == (3, 3)

    def test_disconnected_fabric_rejected(self):
        with pytest.raises(TopologyError):
            CustomTopology(
                name="split",
                slot_switch=[0, 0, 1, 1],
                links=[],  # two islands
            )

    def test_self_link_rejected(self):
        with pytest.raises(TopologyError):
            CustomTopology(
                name="selfy", slot_switch=[0, 0], links=[(0, 0)]
            )

    def test_single_slot_rejected(self):
        with pytest.raises(TopologyError):
            CustomTopology(name="one", slot_switch=[0], links=[])

    def test_missing_positions_rejected(self):
        with pytest.raises(TopologyError):
            CustomTopology(
                name="p",
                slot_switch=[0, 1],
                links=[(0, 1)],
                positions={0: (0.0, 0.0)},  # switch 1 missing
            )

    def test_default_positions_grid(self):
        topo = dual_hub()
        assert topo.position(switch(0)) != topo.position(switch(1))


def double_bridge() -> CustomTopology:
    """Two hubs joined by two parallel channels (a fat link)."""
    return CustomTopology(
        name="double-bridge",
        slot_switch=[0, 0, 0, 1, 1, 1],
        links=[(0, 1), (0, 1)],
    )


class TestParallelLinks:
    def test_multiplicity_is_explicit_not_a_silent_union(self):
        topo = double_bridge()
        assert topo.link_multiplicity() == {(0, 1): 2}
        assert topo.channel_multiplicity(switch(0), switch(1)) == 2
        assert topo.channel_multiplicities() == {
            (switch(0), switch(1)): 2,
            (switch(1), switch(0)): 2,
        }

    def test_single_links_report_no_multiplicity(self):
        topo = dual_hub()
        assert topo.channel_multiplicities() is None
        assert topo.channel_multiplicity(switch(0), switch(1)) == 1

    def test_ports_count_each_physical_channel(self):
        topo = double_bridge()
        # 3 core ports + 2 bridge channels on each hub.
        assert topo.switch_ports(switch(0)) == (5, 5)
        assert topo.switch_ports(switch(1)) == (5, 5)

    def test_resource_summary_counts_channels(self):
        # 2 net channels (the fat link) + 6 core links.
        assert double_bridge().resource_summary().num_links == 8

    def test_fat_link_doubles_bandwidth_feasibility(self, tiny_app):
        """A load that saturates two channels is feasible across a
        double link but not across a single one."""
        from repro.core.constraints import Constraints as C
        from repro.core.evaluate import evaluate_mapping
        from repro.routing.library import make_routing

        single = CustomTopology(
            "single", slot_switch=[0, 0, 1, 1], links=[(0, 1)]
        )
        double = CustomTopology(
            "double", slot_switch=[0, 0, 1, 1], links=[(0, 1), (0, 1)]
        )
        # c0<->c1 on switch 0, c2<->c3 on switch 1: the c1->c2 and
        # c3->c0 flows (150 + 50 MB/s) cross the bridge.
        assignment = {0: 0, 1: 1, 2: 2, 3: 3}
        constraints = C(link_capacity_mb_s=120.0)
        ev_single = evaluate_mapping(
            tiny_app, single, assignment, make_routing("MP"), constraints
        )
        ev_double = evaluate_mapping(
            tiny_app, double, assignment, make_routing("MP"), constraints
        )
        assert not ev_single.bandwidth_feasible
        assert ev_double.bandwidth_feasible
        # Per-channel semantics: the double link halves the reported
        # constrained load.
        assert ev_double.max_link_load == ev_single.max_link_load / 2

    def test_fat_link_physical_models_scale(self):
        """Parallel channels cost real wiring area and leakage."""
        from repro.physical.estimate import NetworkEstimator

        est = NetworkEstimator()
        single = CustomTopology(
            "single", slot_switch=[0, 0, 1, 1], links=[(0, 1)]
        )
        double = CustomTopology(
            "double", slot_switch=[0, 0, 1, 1], links=[(0, 1), (0, 1)]
        )
        assert est.channels_area_mm2(
            double
        ) == pytest.approx(2 * est.channels_area_mm2(single))

    def test_generation_emits_one_link_per_channel(self, tiny_app):
        from repro.xpipes.netlist import build_netlist

        topo = double_bridge()
        assignment = {0: 0, 1: 1, 2: 3, 3: 4}
        netlist = build_netlist(tiny_app, topo, assignment)
        netlist.validate()
        bridge_links = [
            link
            for link in netlist.links
            if link.src_instance.startswith("sw_")
            and link.dst_instance.startswith("sw_")
        ]
        # Two channels per direction.
        assert len(bridge_links) == 4
        ports = {
            (link.src_instance, link.src_port) for link in bridge_links
        }
        assert len(ports) == 4  # distinct physical ports

    def test_simulation_runs_on_fat_link_fabric(self):
        """The simulator treats a fat link as one channel (documented
        conservative approximation) but must run correctly on it."""
        from repro.simulation import Network, SimConfig, SyntheticTraffic

        net = Network(double_bridge(), SimConfig(seed=3))
        net.run(600, SyntheticTraffic("uniform", 0.05, seed=5))
        assert net.drain()
        assert net.injected_packets == len(net.delivered)

    def test_self_link_still_rejected(self):
        with pytest.raises(TopologyError):
            CustomTopology(
                name="selfy",
                slot_switch=[0, 0, 1],
                links=[(0, 1), (1, 1)],
            )


class TestBehaviour:
    def test_same_hub_slots_are_one_hop(self):
        topo = dual_hub()
        assert topo.hop_distance(0, 1) == 1  # share the hub switch
        assert topo.hop_distance(0, 4) == 2  # across the bridge

    def test_quadrant_defaults_to_whole_graph(self):
        topo = dual_hub()
        assert topo.quadrant_nodes(0, 4) is None

    def test_mapping_end_to_end(self, tiny_app):
        topo = dual_hub()
        ev = map_onto(
            tiny_app,
            topo,
            routing="MP",
            objective="hops",
            constraints=Constraints(),
            config=MapperConfig(converge=False),
        )
        assert ev.feasible
        assert ev.floorplan is not None
        assert ev.power_mw > 0

    def test_generation_end_to_end(self, tiny_app):
        from repro.xpipes.netlist import build_netlist

        topo = irregular()
        assignment = {0: 0, 1: 2, 2: 3, 3: 6}
        netlist = build_netlist(tiny_app, topo, assignment)
        netlist.validate()
        assert len(netlist.switches) == 5

    def test_simulation_end_to_end(self):
        from repro.simulation import Network, SimConfig, SyntheticTraffic

        topo = irregular()
        net = Network(topo, SimConfig(seed=4))
        net.run(800, SyntheticTraffic("uniform", 0.05, seed=5))
        assert net.drain()
        assert net.injected_packets == len(net.delivered)
