"""Topology construction at larger scales (sizing laws, invariants)."""

import pytest

from repro.topology.base import is_switch, term
from repro.topology.butterfly import ButterflyTopology
from repro.topology.clos import ClosTopology
from repro.topology.hypercube import HypercubeTopology
from repro.topology.library import make_topology, standard_library
from repro.topology.mesh import MeshTopology
from repro.topology.torus import TorusTopology


class TestMeshScaling:
    @pytest.mark.parametrize("n", [20, 30, 48, 64])
    def test_slot_count_and_shape(self, n):
        topo = MeshTopology.for_cores(n)
        assert topo.num_slots >= n
        assert topo.cols - topo.rows <= 2  # near-square

    def test_link_count_formula(self):
        for rows, cols in [(4, 4), (5, 6), (8, 8)]:
            topo = MeshTopology(rows, cols)
            expected = rows * (cols - 1) + cols * (rows - 1)
            assert len(topo.net_edges()) == 2 * expected

    def test_64_node_distances(self):
        topo = MeshTopology(8, 8)
        assert topo.hop_distance(0, 63) == 15  # 14 links + 1


class TestTorusScaling:
    def test_every_switch_degree_four(self):
        topo = TorusTopology(5, 5)
        for sw in topo.switches:
            assert topo.switch_ports(sw) == (5, 5)

    def test_diameter_halved_vs_mesh(self):
        mesh = MeshTopology(6, 6)
        torus = TorusTopology(6, 6)
        mesh_diam = max(
            mesh.hop_distance(0, j) for j in range(36)
        )
        torus_diam = max(
            torus.hop_distance(0, j) for j in range(36)
        )
        assert torus_diam <= (mesh_diam + 2) // 2 + 1


class TestButterflyScaling:
    @pytest.mark.parametrize("k,n", [(2, 4), (3, 3), (4, 3), (8, 2)])
    def test_structure_counts(self, k, n):
        topo = ButterflyTopology(k=k, n=n)
        assert topo.num_slots == k**n
        assert len(topo.switches) == n * k ** (n - 1)
        assert len(topo.net_edges()) == (n - 1) * k**n

    @pytest.mark.parametrize("k,n", [(2, 4), (3, 3), (4, 3)])
    def test_unique_paths_at_scale(self, k, n):
        topo = ButterflyTopology(k=k, n=n)
        slots = topo.num_slots
        for s, d in [(0, slots - 1), (1, slots // 2), (slots - 1, 0)]:
            path = topo.unique_path(s, d)
            assert path[0] == term(s) and path[-1] == term(d)
            assert sum(1 for x in path if is_switch(x)) == n
            for u, v in zip(path, path[1:]):
                assert topo.graph.has_edge(u, v)


class TestClosScaling:
    @pytest.mark.parametrize("n_cores", [8, 12, 16, 24, 32])
    def test_sizing_keeps_stages_reasonable(self, n_cores):
        topo = ClosTopology.for_cores(n_cores)
        assert topo.num_slots >= n_cores
        assert 2 <= topo.m <= 8
        # All pairs still exactly 3 hops.
        assert topo.hop_distance(0, topo.num_slots - 1) == 3

    def test_middle_capacity_scales(self):
        topo = ClosTopology.for_cores(32)
        n_in, n_out = topo.switch_ports(topo.stages()[1][0])
        assert n_in == topo.r and n_out == topo.r


class TestHypercubeScaling:
    def test_six_dimensional(self):
        topo = HypercubeTopology(6)
        assert topo.num_slots == 64
        assert len(topo.net_edges()) == 64 * 6  # directed
        assert topo.hop_distance(0, 63) == 7


class TestLibraryScaling:
    @pytest.mark.parametrize("n", [6, 12, 16, 24, 32])
    def test_standard_library_always_fits(self, n):
        for topo in standard_library(n):
            assert topo.fits(n)
            topo.validate()

    def test_quadrants_shrink_relative_to_graph(self):
        """The larger the NoC, the bigger the quadrant saving."""
        small = make_topology("mesh", 12)
        large = make_topology("mesh", 64)

        def ratio(topo):
            quad = topo.quadrant_nodes(0, topo.cols + 1)  # small box
            return len(quad) / topo.graph.number_of_nodes()

        assert ratio(large) < ratio(small)
