"""3-stage Clos behaviour (Figure 2(a), Sections 4.2/6.2)."""

import pytest

from repro.errors import TopologyError
from repro.topology.base import is_switch, switch
from repro.topology.clos import ClosTopology


class TestSizing:
    def test_paper_figure_sizing_8_cores(self):
        """Figure 2(a): 8 cores -> 4 switches per stage, 2 cores each."""
        topo = ClosTopology.for_cores(8)
        assert (topo.n, topo.r, topo.m) == (2, 4, 4)

    @pytest.mark.parametrize("n_cores", [6, 8, 12, 16, 24])
    def test_slots_cover_cores(self, n_cores):
        topo = ClosTopology.for_cores(n_cores)
        assert topo.num_slots >= n_cores

    def test_explicit_parameters(self):
        topo = ClosTopology(m=3, n=2, r=5)
        assert topo.num_slots == 10
        assert len(topo.switches) == 5 + 3 + 5

    def test_bad_parameters(self):
        with pytest.raises(TopologyError):
            ClosTopology(m=0, n=2, r=2)
        with pytest.raises(TopologyError):
            ClosTopology(m=2, n=1, r=1)


class TestStructure:
    def test_full_interstage_connectivity(self):
        """Every stage-1 switch connects to every middle switch."""
        topo = ClosTopology.for_cores(8)
        for i in range(topo.r):
            for j in range(topo.m):
                assert topo.graph.has_edge(
                    switch(("in", i)), switch(("mid", j))
                )
                assert topo.graph.has_edge(
                    switch(("mid", j)), switch(("out", i))
                )

    def test_stages_structure(self):
        topo = ClosTopology.for_cores(12)
        stages = topo.stages()
        assert len(stages) == 3
        assert len(stages[0]) == topo.r
        assert len(stages[1]) == topo.m
        assert len(stages[2]) == topo.r

    def test_terminal_attachment(self):
        topo = ClosTopology(m=4, n=3, r=4)
        assert topo.ingress_of(0) == switch(("in", 0))
        assert topo.ingress_of(5) == switch(("in", 1))
        assert topo.egress_of(11) == switch(("out", 3))


class TestPaths:
    def test_every_pair_is_three_hops(self):
        """Section 6.1: 'As the clos network has three stages, the
        average hop delay is three.'"""
        topo = ClosTopology.for_cores(12)
        for s in range(topo.num_slots):
            for d in range(topo.num_slots):
                if s != d:
                    assert topo.hop_distance(s, d) == 3

    def test_path_diversity_equals_middle_count(self):
        topo = ClosTopology.for_cores(8)
        assert topo.path_diversity(0, 7) == topo.m

    def test_quadrant_contains_all_middles(self):
        topo = ClosTopology.for_cores(8)
        nodes = topo.quadrant_nodes(0, 7)
        mids = [n for n in nodes if is_switch(n) and n[1][0] == "mid"]
        assert len(mids) == topo.m

    def test_quadrant_single_ingress_egress(self):
        topo = ClosTopology.for_cores(8)
        nodes = topo.quadrant_nodes(0, 7)
        ins = [n for n in nodes if is_switch(n) and n[1][0] == "in"]
        outs = [n for n in nodes if is_switch(n) and n[1][0] == "out"]
        assert ins == [switch(("in", 0))]
        assert outs == [switch(("out", 3))]

    def test_same_edge_switch_still_three_hops(self):
        topo = ClosTopology.for_cores(8)
        assert topo.hop_distance(0, 1) == 3
