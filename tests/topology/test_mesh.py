"""Mesh-specific behaviour (Figure 1(a), Sections 4.2/4.3)."""

import pytest

from repro.errors import TopologyError
from repro.topology.base import is_switch, switch, term
from repro.topology.mesh import MeshTopology


class TestSizing:
    @pytest.mark.parametrize(
        "n,rows,cols",
        [(12, 3, 4), (16, 4, 4), (6, 2, 3), (14, 3, 5), (9, 3, 3), (2, 1, 2)],
    )
    def test_for_cores_near_square(self, n, rows, cols):
        topo = MeshTopology.for_cores(n)
        assert (topo.rows, topo.cols) == (rows, cols)
        assert topo.num_slots >= n

    def test_bad_dimensions_rejected(self):
        with pytest.raises(TopologyError):
            MeshTopology(0, 3)
        with pytest.raises(TopologyError):
            MeshTopology(1, 1)

    def test_for_single_core_rejected(self):
        with pytest.raises(TopologyError):
            MeshTopology.for_cores(1)


class TestDegrees:
    def test_port_counts_vary_with_position(self):
        """Corners are 3x3, edges 4x4, interior 5x5 (with core port)."""
        topo = MeshTopology(3, 4)
        corner = topo.switch_ports(switch(0))
        edge = topo.switch_ports(switch(1))
        interior = topo.switch_ports(switch(5))
        assert corner == (3, 3)
        assert edge == (4, 4)
        assert interior == (5, 5)

    def test_resource_counts_3x4(self):
        topo = MeshTopology(3, 4)
        rs = topo.resource_summary()
        assert rs.num_switches == 12
        # 17 bidirectional mesh channels + 12 core links.
        assert rs.num_links == 17 + 12


class TestCells:
    def test_cell_round_trip(self):
        topo = MeshTopology(3, 4)
        for slot in range(12):
            r, c = topo.slot_cell(slot)
            assert topo.cell_slot(r, c) == slot

    def test_cell_out_of_range(self):
        topo = MeshTopology(3, 4)
        with pytest.raises(TopologyError):
            topo.slot_cell(12)


class TestQuadrant:
    def test_quadrant_is_bounding_box(self):
        topo = MeshTopology(3, 4)
        nodes = topo.quadrant_nodes(0, 5)  # (0,0) to (1,1)
        switches = sorted(n[1] for n in nodes if is_switch(n))
        assert switches == [0, 1, 4, 5]

    def test_quadrant_row_pair(self):
        topo = MeshTopology(3, 4)
        nodes = topo.quadrant_nodes(4, 7)  # same row
        switches = sorted(n[1] for n in nodes if is_switch(n))
        assert switches == [4, 5, 6, 7]

    def test_quadrant_single_cell(self):
        topo = MeshTopology(3, 4)
        nodes = topo.quadrant_nodes(6, 6)
        assert switch(6) in nodes

    def test_quadrant_smaller_than_graph(self):
        """The computational-saving claim of Section 4.1."""
        topo = MeshTopology.for_cores(64)
        quad = topo.quadrant_nodes(0, 9)  # (0,0) to (1,1)
        assert len(quad) < topo.graph.number_of_nodes() / 4


class TestDorPath:
    def test_dor_is_x_first(self):
        topo = MeshTopology(3, 4)
        path = topo.dor_path(0, 6)  # (0,0) -> (1,2)
        switches = [n[1] for n in path if is_switch(n)]
        assert switches == [0, 1, 2, 6]

    def test_dor_endpoints_are_terminals(self):
        topo = MeshTopology(3, 4)
        path = topo.dor_path(2, 9)
        assert path[0] == term(2) and path[-1] == term(9)

    def test_dor_path_length_is_minimal(self):
        topo = MeshTopology(4, 4)
        for src, dst in [(0, 15), (3, 12), (5, 10)]:
            switches = sum(1 for n in topo.dor_path(src, dst) if is_switch(n))
            assert switches == topo.hop_distance(src, dst)

    def test_dor_edges_exist(self):
        topo = MeshTopology(3, 4)
        path = topo.dor_path(0, 11)
        for u, v in zip(path, path[1:]):
            assert topo.graph.has_edge(u, v)

    def test_hop_distance_is_manhattan_plus_one(self):
        topo = MeshTopology(3, 4)
        assert topo.hop_distance(0, 1) == 2  # adjacent = 2 switches (paper)
        assert topo.hop_distance(0, 11) == 6  # (0,0)->(2,3): 5 links
