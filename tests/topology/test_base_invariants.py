"""Generic invariants every library topology must satisfy."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.topology.base import is_switch, is_term, term
from repro.topology.library import (
    EXTENSION_NAMES,
    STANDARD_NAMES,
    available_topologies,
    extended_library,
    make_topology,
    register_topology,
    standard_library,
)


class TestStructure:
    def test_validate_passes(self, any_topology):
        any_topology.validate()

    def test_has_enough_slots(self, any_topology):
        assert any_topology.num_slots >= 12 or any_topology.name == "octagon"

    def test_terminals_present(self, any_topology):
        g = any_topology.graph
        for t in any_topology.terminals:
            assert t in g

    def test_every_terminal_has_injection_and_ejection(self, any_topology):
        g = any_topology.graph
        for i in range(any_topology.num_slots):
            t = term(i)
            assert any(is_switch(v) for _, v in g.out_edges(t))
            assert any(is_switch(u) for u, _ in g.in_edges(t))

    def test_edges_have_kind_and_length(self, any_topology):
        for u, v, d in any_topology.graph.edges(data=True):
            assert d["kind"] in ("core", "net")
            assert d["length"] > 0

    def test_strong_connectivity_between_terminals(self, any_topology):
        g = any_topology.graph
        src = term(0)
        reachable = nx.descendants(g, src)
        for i in range(1, any_topology.num_slots):
            assert term(i) in reachable

    def test_switch_ports_positive(self, any_topology):
        for sw in any_topology.switches:
            n_in, n_out = any_topology.switch_ports(sw)
            assert n_in >= 1 and n_out >= 1

    def test_positions_defined_for_all_nodes(self, any_topology):
        for node in any_topology.graph.nodes:
            x, y = any_topology.position(node)
            assert isinstance(x, float) and isinstance(y, float)

    def test_switch_of_matches_graph(self, any_topology):
        for i in range(any_topology.num_slots):
            sw = any_topology.switch_of(i)
            assert any_topology.graph.has_edge(term(i), sw)


class TestDistances:
    def test_hop_distance_zero_on_same_slot(self, any_topology):
        assert any_topology.hop_distance(3, 3) == 0

    def test_hop_distance_at_least_one(self, any_topology):
        n = any_topology.num_slots
        for j in range(1, min(n, 6)):
            assert any_topology.hop_distance(0, j) >= 1

    def test_path_diversity_positive(self, any_topology):
        assert any_topology.path_diversity(0, 1) >= 1

    def test_fits(self, any_topology):
        assert any_topology.fits(any_topology.num_slots)
        assert not any_topology.fits(any_topology.num_slots + 1)


class TestQuadrants:
    def test_quadrant_contains_endpoints(self, any_topology):
        nodes = any_topology.quadrant_nodes(0, 5)
        if nodes is None:
            return  # whole graph: trivially contains them
        assert term(0) in nodes and term(5) in nodes

    def test_quadrant_preserves_min_distance(self, any_topology):
        """The quadrant must contain a minimum path (Section 4.3)."""
        n = any_topology.num_slots
        pairs = [(0, n - 1), (1, n // 2), (2, 5)]
        for s, d in pairs:
            if s == d:
                continue
            sub = any_topology.quadrant_subgraph(s, d)
            full_dist = nx.shortest_path_length(
                any_topology.graph, term(s), term(d)
            )
            quad_dist = nx.shortest_path_length(sub, term(s), term(d))
            assert quad_dist == full_dist

    def test_quadrant_is_subset_of_graph(self, any_topology):
        nodes = any_topology.quadrant_nodes(0, 3)
        if nodes is None:
            return
        assert nodes <= set(any_topology.graph.nodes)

    def test_quadrant_no_foreign_terminals(self, any_topology):
        nodes = any_topology.quadrant_nodes(0, 3)
        if nodes is None:
            return
        terms = {n for n in nodes if is_term(n)}
        assert terms == {term(0), term(3)}


class TestResourceSummary:
    def test_counts_positive(self, any_topology):
        rs = any_topology.resource_summary()
        assert rs.num_switches >= 1
        assert rs.num_links >= any_topology.num_slots

    def test_mapped_slots_reduce_core_links(self, any_topology):
        full = any_topology.resource_summary()
        partial = any_topology.resource_summary(mapped_slots=[0, 1, 2])
        assert partial.num_links < full.num_links


class TestLibrary:
    def test_standard_library_has_five_entries(self):
        topos = standard_library(12)
        assert [t.name.split("-")[0] for t in topos] == list(STANDARD_NAMES)

    def test_extended_library_adds_extensions(self):
        topos = extended_library(8)
        names = {t.name.split("-")[0] for t in topos}
        for ext in EXTENSION_NAMES:
            assert ext in names

    def test_extended_library_skips_octagon_for_large_apps(self):
        names = {t.name.split("-")[0] for t in extended_library(12)}
        assert "octagon" not in names

    def test_unknown_topology_rejected(self):
        with pytest.raises(TopologyError):
            make_topology("moebius", 8)

    def test_register_topology_roundtrip(self):
        from repro.topology.mesh import MeshTopology

        register_topology("testmesh", MeshTopology.for_cores)
        try:
            topo = make_topology("testmesh", 6)
            assert topo.num_slots >= 6
            assert "testmesh" in available_topologies()
        finally:
            from repro.topology import library

            library._REGISTRY.pop("testmesh", None)

    def test_register_duplicate_rejected(self):
        from repro.topology.mesh import MeshTopology

        with pytest.raises(TopologyError):
            register_topology("mesh", MeshTopology.for_cores)
