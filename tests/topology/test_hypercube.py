"""Hypercube behaviour: adjacency, subcube quadrants, e-cube routing."""

import pytest

from repro.errors import TopologyError
from repro.topology.base import is_switch, switch, term
from repro.topology.hypercube import HypercubeTopology


class TestSizing:
    @pytest.mark.parametrize("n,dims", [(12, 4), (16, 4), (8, 3), (6, 3), (2, 1)])
    def test_for_cores(self, n, dims):
        topo = HypercubeTopology.for_cores(n)
        assert topo.dimensions == dims
        assert topo.num_slots == 2**dims

    def test_bad_dimensions(self):
        with pytest.raises(TopologyError):
            HypercubeTopology(0)


class TestAdjacency:
    def test_neighbors_differ_in_one_bit(self):
        topo = HypercubeTopology(3)
        for u, v, d in topo.graph.edges(data=True):
            if d["kind"] != "net":
                continue
            diff = u[1] ^ v[1]
            assert diff != 0 and diff & (diff - 1) == 0

    def test_node_degree_is_dimension(self):
        topo = HypercubeTopology(4)
        for sw in topo.switches:
            n_in, n_out = topo.switch_ports(sw)
            assert n_in == topo.dimensions + 1  # + core port

    def test_paper_example_adjacency(self):
        """Node 6 (1,1,0) is adjacent to node 2 (0,1,0) — Section 4.2."""
        topo = HypercubeTopology(3)
        assert topo.graph.has_edge(switch(6), switch(2))

    def test_hop_distance_is_hamming_plus_one(self):
        topo = HypercubeTopology(4)
        assert topo.hop_distance(0, 15) == 5  # Hamming 4 -> 5 switches
        assert topo.hop_distance(0, 1) == 2
        assert topo.hop_distance(5, 6) == 3  # Hamming 2


class TestQuadrant:
    def test_paper_example_quadrant(self):
        """Source 0=(0,0,0), dest 3=(0,1,1) -> nodes {0,1,2,3}."""
        topo = HypercubeTopology(3)
        nodes = topo.quadrant_nodes(0, 3)
        switches = sorted(n[1] for n in nodes if is_switch(n))
        assert switches == [0, 1, 2, 3]

    def test_quadrant_size_is_power_of_two(self):
        topo = HypercubeTopology(4)
        for s, d in [(0, 15), (3, 5), (7, 8)]:
            nodes = topo.quadrant_nodes(s, d)
            n_switches = sum(1 for n in nodes if is_switch(n))
            hamming = bin(s ^ d).count("1")
            assert n_switches == 2**hamming

    def test_adjacent_pair_quadrant_is_two_switches(self):
        topo = HypercubeTopology(4)
        nodes = topo.quadrant_nodes(0, 8)
        assert sum(1 for n in nodes if is_switch(n)) == 2


class TestEcube:
    def test_path_fixes_lowest_bits_first(self):
        topo = HypercubeTopology(3)
        path = topo.dor_path(0, 5)  # bits 0 and 2
        switches = [n[1] for n in path if is_switch(n)]
        assert switches == [0, 1, 5]

    def test_path_minimal_and_valid(self):
        topo = HypercubeTopology(4)
        for src, dst in [(0, 15), (2, 13), (6, 9)]:
            path = topo.dor_path(src, dst)
            for u, v in zip(path, path[1:]):
                assert topo.graph.has_edge(u, v)
            hops = sum(1 for n in path if is_switch(n))
            assert hops == topo.hop_distance(src, dst)

    def test_same_node_path(self):
        topo = HypercubeTopology(3)
        path = topo.dor_path(4, 4)
        assert path == [term(4), switch(4), term(4)]
