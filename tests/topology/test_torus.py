"""Torus-specific behaviour: wrap channels, arcs, quadrants, DOR."""

from repro.topology.base import is_switch
from repro.topology.torus import TorusTopology, cyclic_arc


class TestCyclicArc:
    def test_direct_when_no_wrap(self):
        assert cyclic_arc(0, 3, 4, wraps=False) == [0, 1, 2, 3]
        assert cyclic_arc(3, 0, 4, wraps=False) == [3, 2, 1, 0]

    def test_wrap_shortcut_taken(self):
        assert cyclic_arc(0, 3, 4, wraps=True) == [0, 3]
        assert cyclic_arc(3, 0, 4, wraps=True) == [3, 0]

    def test_tie_prefers_direct(self):
        assert cyclic_arc(0, 2, 4, wraps=True) == [0, 1, 2]

    def test_single_point(self):
        assert cyclic_arc(2, 2, 5, wraps=True) == [2]

    def test_arc_starts_and_ends_correctly(self):
        for a in range(5):
            for b in range(5):
                arc = cyclic_arc(a, b, 5, wraps=True)
                assert arc[0] == a and arc[-1] == b


class TestStructure:
    def test_every_switch_is_5x5_in_3x4(self):
        topo = TorusTopology(3, 4)
        for sw in topo.switches:
            assert topo.switch_ports(sw) == (5, 5)

    def test_wrap_edges_marked_and_long(self):
        topo = TorusTopology(3, 4)
        wraps = [
            (u, v, d)
            for u, v, d in topo.graph.edges(data=True)
            if d.get("wrap")
        ]
        assert wraps, "3x4 torus must have wrap channels"
        for _, _, d in wraps:
            assert d["length"] >= 2.0

    def test_small_dimension_has_no_wrap(self):
        topo = TorusTopology(2, 3)
        for u, v, d in topo.graph.edges(data=True):
            if d.get("wrap"):
                assert d["length"] >= 2.0
        # rows == 2: no row wrap channels (would duplicate edges)
        assert not any(
            d.get("wrap")
            and topo.slot_cell(u[1])[1] == topo.slot_cell(v[1])[1]
            for u, v, d in topo.graph.edges(data=True)
            if is_switch(u) and is_switch(v)
        )

    def test_resource_counts_3x4(self):
        topo = TorusTopology(3, 4)
        rs = topo.resource_summary()
        assert rs.num_switches == 12
        # 24 bidirectional channels (every node degree 4) + 12 core links.
        assert rs.num_links == 24 + 12

    def test_torus_distance_never_exceeds_mesh(self):
        from repro.topology.mesh import MeshTopology

        mesh = MeshTopology(3, 4)
        torus = TorusTopology(3, 4)
        for s in range(12):
            for d in range(12):
                if s != d:
                    assert torus.hop_distance(s, d) <= mesh.hop_distance(s, d)


class TestQuadrant:
    def test_wraparound_quadrant_is_small(self):
        topo = TorusTopology(3, 4)
        nodes = topo.quadrant_nodes(0, 11)  # corners, wrap in both dims
        switches = sorted(n[1] for n in nodes if is_switch(n))
        assert switches == [0, 3, 8, 11]

    def test_quadrant_matches_mesh_when_no_wrap_helps(self):
        topo = TorusTopology(3, 4)
        nodes = topo.quadrant_nodes(0, 5)
        switches = sorted(n[1] for n in nodes if is_switch(n))
        assert switches == [0, 1, 4, 5]


class TestDorPath:
    def test_dor_uses_wrap_shortcut(self):
        topo = TorusTopology(3, 4)
        path = topo.dor_path(0, 3)  # (0,0)->(0,3): wrap is 1 hop
        switches = [n[1] for n in path if is_switch(n)]
        assert switches == [0, 3]

    def test_dor_both_dimensions(self):
        topo = TorusTopology(3, 4)
        path = topo.dor_path(0, 11)  # (0,0)->(2,3): wrap both ways
        switches = [n[1] for n in path if is_switch(n)]
        assert switches == [0, 3, 11]

    def test_dor_minimal(self):
        topo = TorusTopology(4, 4)
        for src, dst in [(0, 15), (1, 14), (5, 10)]:
            hops = sum(1 for n in topo.dor_path(src, dst) if is_switch(n))
            assert hops == topo.hop_distance(src, dst)

    def test_dor_edges_exist(self):
        topo = TorusTopology(3, 4)
        for dst in range(1, 12):
            path = topo.dor_path(0, dst)
            for u, v in zip(path, path[1:]):
                assert topo.graph.has_edge(u, v)
