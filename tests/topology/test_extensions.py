"""Extension topologies: octagon, star, ring (Section 1's 'easily
added' claim)."""

import pytest

from repro.errors import TopologyError
from repro.topology.base import is_switch, switch, term
from repro.topology.octagon import OctagonTopology
from repro.topology.ring import RingTopology
from repro.topology.star import StarTopology


class TestOctagon:
    def test_eight_slots(self):
        topo = OctagonTopology()
        assert topo.num_slots == 8
        topo.validate()

    def test_rejects_more_than_eight_cores(self):
        with pytest.raises(TopologyError):
            OctagonTopology.for_cores(9)

    def test_cross_links_exist(self):
        topo = OctagonTopology()
        for i in range(4):
            assert topo.graph.has_edge(switch(i), switch(i + 4))

    def test_max_two_network_hops(self):
        """The octagon property: any pair within 3 switches."""
        topo = OctagonTopology()
        for s in range(8):
            for d in range(8):
                if s != d:
                    assert topo.hop_distance(s, d) <= 3

    def test_node_degree(self):
        topo = OctagonTopology()
        for sw in topo.switches:
            n_in, _ = topo.switch_ports(sw)
            assert n_in == 4  # two ring + one cross + core


class TestStar:
    def test_single_hub(self):
        topo = StarTopology(8)
        assert len(topo.switches) == 1
        topo.validate()

    def test_all_pairs_one_hop(self):
        topo = StarTopology(6)
        for s in range(6):
            for d in range(6):
                if s != d:
                    assert topo.hop_distance(s, d) == 1

    def test_hub_radix_grows_with_leaves(self):
        topo = StarTopology(10)
        assert topo.switch_ports(topo.hub) == (10, 10)

    def test_core_links_constrained(self):
        assert StarTopology(4).constrain_core_links is True

    def test_dor_path(self):
        topo = StarTopology(5)
        assert topo.dor_path(1, 3) == [term(1), topo.hub, term(3)]

    def test_minimum_leaves(self):
        with pytest.raises(TopologyError):
            StarTopology(1)


class TestRing:
    def test_structure(self):
        topo = RingTopology(8)
        topo.validate()
        assert topo.num_slots == 8
        rs = topo.resource_summary()
        assert rs.num_switches == 8
        assert rs.num_links == 8 + 8  # ring channels + core links

    def test_minimum_size(self):
        with pytest.raises(TopologyError):
            RingTopology(2)

    def test_distance_is_shorter_arc(self):
        topo = RingTopology(8)
        assert topo.hop_distance(0, 1) == 2
        assert topo.hop_distance(0, 4) == 5
        assert topo.hop_distance(0, 7) == 2  # wrap

    def test_quadrant_is_shorter_arc(self):
        topo = RingTopology(8)
        nodes = topo.quadrant_nodes(0, 6)
        switches = sorted(n[1] for n in nodes if is_switch(n))
        assert switches == [0, 6, 7]

    def test_dateline_edge_marked(self):
        topo = RingTopology(6)
        wraps = [
            (u, v)
            for u, v, d in topo.graph.edges(data=True)
            if d.get("wrap")
        ]
        assert (switch(5), switch(0)) in wraps
