"""Butterfly (k-ary n-fly) behaviour (Figure 2(b), Sections 4.2/4.3)."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.topology.base import is_switch, switch, term
from repro.topology.butterfly import ButterflyTopology


class TestSizing:
    @pytest.mark.parametrize(
        "n,k", [(12, 4), (16, 4), (6, 3), (9, 3), (4, 2), (25, 5)]
    )
    def test_for_cores_two_stage(self, n, k):
        topo = ButterflyTopology.for_cores(n)
        assert (topo.k, topo.n) == (k, 2)
        assert topo.num_slots >= n

    def test_explicit_2ary_3fly(self):
        """The paper's Figure 2(b) network."""
        topo = ButterflyTopology(k=2, n=3)
        assert topo.num_slots == 8
        assert topo.switches_per_stage == 4
        assert len(topo.switches) == 12

    def test_bad_parameters(self):
        with pytest.raises(TopologyError):
            ButterflyTopology(k=1, n=2)
        with pytest.raises(TopologyError):
            ButterflyTopology(k=2, n=0)


class TestWiring:
    def test_paper_distance_halving_example(self):
        """Section 4.2: in a 2-ary 3-fly, switch 0 of stage 1 connects to
        switches 0 and 2 of stage 2; switch 0 of stage 2 connects to
        switches 0 and 1 of stage 3."""
        topo = ButterflyTopology(k=2, n=3)
        g = topo.graph
        stage0_targets = sorted(
            v[1][1] for _, v in g.out_edges(switch((0, 0))) if is_switch(v)
        )
        assert stage0_targets == [0, 2]
        stage1_targets = sorted(
            v[1][1] for _, v in g.out_edges(switch((1, 0))) if is_switch(v)
        )
        assert stage1_targets == [0, 1]

    def test_switch_radix_is_k(self):
        topo = ButterflyTopology(k=4, n=2)
        for sw in topo.switches:
            assert topo.switch_ports(sw) == (4, 4)

    def test_interstage_link_count(self):
        topo = ButterflyTopology(k=4, n=2)
        net = topo.net_edges()
        assert len(net) == 4 * 4  # full k x k^{n-1} pattern for n=2


class TestUniquePath:
    def test_exactly_one_path_between_any_pair(self):
        from repro.routing.shortest import routing_view

        topo = ButterflyTopology(k=2, n=3)
        for s in range(8):
            for d in range(8):
                if s == d:
                    continue
                view = routing_view(topo.graph, term(s), term(d))
                paths = list(nx.all_simple_paths(view, term(s), term(d)))
                assert len(paths) == 1

    def test_unique_path_matches_graph_shortest(self):
        topo = ButterflyTopology(k=4, n=2)
        for s, d in [(0, 15), (3, 12), (7, 8), (1, 2)]:
            expected = nx.shortest_path(topo.graph, term(s), term(d))
            assert topo.unique_path(s, d) == expected

    def test_all_pairs_traverse_n_switches(self):
        """Section 6.1: 'a 4-ary 2-fly has 2 stages of switches, which
        means an average delay of 2 hops for all communication.'"""
        topo = ButterflyTopology(k=4, n=2)
        for s in range(16):
            for d in range(16):
                if s != d:
                    assert topo.hop_distance(s, d) == 2

    def test_path_diversity_is_one(self):
        topo = ButterflyTopology(k=4, n=2)
        assert topo.path_diversity(0, 15) == 1

    def test_dor_path_equals_unique_path(self):
        topo = ButterflyTopology(k=2, n=3)
        assert topo.dor_path(0, 7) == topo.unique_path(0, 7)

    def test_quadrant_is_the_unique_path(self):
        topo = ButterflyTopology(k=4, n=2)
        assert topo.quadrant_nodes(0, 15) == set(topo.unique_path(0, 15))


class TestPruning:
    def test_unused_switches_pruned_from_resources(self):
        """The DSP example keeps 4 of 6 switches (Figure 10(b))."""
        topo = ButterflyTopology(k=3, n=2)
        routes = [topo.unique_path(s, d) for s, d in [(0, 4), (4, 0), (1, 5)]]
        rs = topo.resource_summary(routes=routes, mapped_slots=[0, 1, 4, 5])
        assert rs.num_switches < len(topo.switches)
