"""Persistent cache backends: durability, corruption, concurrency.

The durability contract under test (see ``repro.engine.backends``):

* a corrupted, truncated or unreadable entry is logged, dropped and
  **recomputed** — never served back and never a crash;
* a schema-version mismatch discards the store (cold start);
* concurrent writers from several processes never corrupt the store;
* warm results are bit-identical to freshly computed ones.
"""

from __future__ import annotations

import pickle
import sqlite3
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.mapper import MapperConfig
from repro.core.selector import select_topology
from repro.engine import (
    DirectoryBackend,
    EvaluationCache,
    ExplorationEngine,
    MemoryBackend,
    SQLiteBackend,
    make_backend,
)
from repro.engine.backends import SCHEMA_VERSION, key_fingerprint

FAST = MapperConfig(converge=False, swap_rounds=1)

KEY_A = ("eval", "fp-a", "MP", "hops")
KEY_B = ("eval", "fp-b", "MP", "hops")
KEY_C = ("eval", "fp-c", "MP", "hops")


class TestMemoryBackend:
    def test_roundtrip_and_len(self):
        backend = MemoryBackend()
        assert backend.get(KEY_A) is None
        assert backend.put(KEY_A, {"cost": 1}) == 0
        assert backend.get(KEY_A) == {"cost": 1}
        assert len(backend) == 1
        backend.clear()
        assert len(backend) == 0

    def test_lru_eviction_prefers_recently_used(self):
        backend = MemoryBackend(max_entries=2)
        backend.put(KEY_A, "a")
        backend.put(KEY_B, "b")
        backend.get(KEY_A)  # touch A: B is now least recently used
        evicted = backend.put(KEY_C, "c")
        assert evicted == 1
        assert backend.evictions == 1
        assert backend.get(KEY_B) is None  # B evicted, not A
        assert backend.get(KEY_A) == "a"
        assert backend.get(KEY_C) == "c"

    def test_overwrite_does_not_evict(self):
        backend = MemoryBackend(max_entries=2)
        backend.put(KEY_A, "a")
        backend.put(KEY_B, "b")
        assert backend.put(KEY_A, "a2") == 0
        assert backend.evictions == 0
        assert backend.get(KEY_A) == "a2"

    def test_zero_bound_stores_nothing(self):
        backend = MemoryBackend(max_entries=0)
        assert backend.put(KEY_A, "a") == 0
        assert len(backend) == 0


class TestSQLiteBackend:
    def test_roundtrip_across_instances(self, tmp_path):
        path = tmp_path / "evals.db"
        store = SQLiteBackend(path)
        store.put(KEY_A, {"cost": 2.5})
        store.close()
        reopened = SQLiteBackend(path)
        assert reopened.get(KEY_A) == {"cost": 2.5}
        assert len(reopened) == 1
        reopened.close()

    def test_corrupt_entry_is_dropped_and_recomputed(self, tmp_path):
        path = tmp_path / "evals.db"
        store = SQLiteBackend(path)
        store.put(KEY_A, {"cost": 1.0})
        store.close()
        # Truncate the pickled payload behind the backend's back.
        conn = sqlite3.connect(path)
        (blob,) = conn.execute("SELECT payload FROM entries").fetchone()
        conn.execute(
            "UPDATE entries SET payload = ?", (blob[: len(blob) // 2],)
        )
        conn.commit()
        conn.close()
        store = SQLiteBackend(path)
        assert store.get(KEY_A) is None  # never served back
        assert store.corrupt_entries == 1
        assert len(store) == 0  # entry deleted: next put recomputes it
        store.put(KEY_A, {"cost": 1.0})
        assert store.get(KEY_A) == {"cost": 1.0}
        store.close()

    def test_garbage_entry_is_dropped(self, tmp_path):
        path = tmp_path / "evals.db"
        store = SQLiteBackend(path)
        conn = sqlite3.connect(path)
        conn.execute(
            "INSERT INTO entries VALUES (?, ?)",
            (key_fingerprint(KEY_A), b"not a pickle"),
        )
        conn.commit()
        conn.close()
        assert store.get(KEY_A) is None
        assert store.corrupt_entries == 1
        store.close()

    def test_unreadable_file_is_rotated_cold(self, tmp_path):
        path = tmp_path / "evals.db"
        path.write_bytes(b"this is not a sqlite database at all")
        store = SQLiteBackend(path)  # must not raise
        assert len(store) == 0
        store.put(KEY_A, "a")
        assert store.get(KEY_A) == "a"
        assert (tmp_path / "evals.db.corrupt").exists()
        store.close()

    def test_schema_mismatch_discards_entries(self, tmp_path):
        path = tmp_path / "evals.db"
        store = SQLiteBackend(path)
        store.put(KEY_A, "a")
        store.close()
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET v = '999' WHERE k = 'schema_version'"
        )
        conn.commit()
        conn.close()
        reopened = SQLiteBackend(path)  # cold start, not a guess
        assert reopened.get(KEY_A) is None
        assert len(reopened) == 0
        reopened.close()

    def test_concurrent_writers_from_processes(self, tmp_path):
        """Two processes hammering the same store never corrupt it."""
        path = tmp_path / "evals.db"
        script = (
            "import sys\n"
            "from repro.engine import SQLiteBackend\n"
            "store = SQLiteBackend(sys.argv[1])\n"
            "tag = sys.argv[2]\n"
            "for i in range(40):\n"
            "    store.put(('shared', i % 10), {'tag': tag, 'i': i})\n"
            "    store.put((tag, i), i)\n"
            "store.close()\n"
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(path), tag],
                env=_child_env(),
            )
            for tag in ("w1", "w2")
        ]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        store = SQLiteBackend(path)
        # 10 shared keys + 40 per writer, every one readable.
        assert len(store) == 90
        for i in range(10):
            value = store.get(("shared", i))
            assert value["tag"] in ("w1", "w2")  # last writer won
        for tag in ("w1", "w2"):
            for i in range(40):
                assert store.get((tag, i)) == i
        store.close()


class TestDirectoryBackend:
    def test_roundtrip_across_instances(self, tmp_path):
        store = DirectoryBackend(tmp_path / "store")
        store.put(KEY_A, {"cost": 3.5})
        assert DirectoryBackend(tmp_path / "store").get(KEY_A) == {
            "cost": 3.5
        }

    def test_corrupt_entry_is_dropped_and_recomputed(self, tmp_path):
        store = DirectoryBackend(tmp_path / "store")
        store.put(KEY_A, {"cost": 1.0})
        (entry,) = list(store.dir.glob("??/*.pkl"))
        entry.write_bytes(entry.read_bytes()[:10])  # truncate
        assert store.get(KEY_A) is None
        assert store.corrupt_entries == 1
        assert len(store) == 0  # unlinked: a recompute repopulates it
        store.put(KEY_A, {"cost": 1.0})
        assert store.get(KEY_A) == {"cost": 1.0}

    def test_schema_version_is_part_of_the_path(self, tmp_path):
        root = tmp_path / "store"
        old = root / "v999" / "ab"
        old.mkdir(parents=True)
        (old / "abcd.pkl").write_bytes(pickle.dumps("stale"))
        store = DirectoryBackend(root)
        assert len(store) == 0  # other-version entries are invisible
        assert store.dir == root / f"v{SCHEMA_VERSION}"

    def test_concurrent_writers_from_processes(self, tmp_path):
        root = tmp_path / "store"
        script = (
            "import sys\n"
            "from repro.engine import DirectoryBackend\n"
            "store = DirectoryBackend(sys.argv[1])\n"
            "tag = sys.argv[2]\n"
            "for i in range(40):\n"
            "    store.put(('shared', i % 10), {'tag': tag, 'i': i})\n"
            "    store.put((tag, i), i)\n"
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(root), tag],
                env=_child_env(),
            )
            for tag in ("w1", "w2")
        ]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        store = DirectoryBackend(root)
        assert len(store) == 90
        for tag in ("w1", "w2"):
            for i in range(40):
                assert store.get((tag, i)) == i
        assert store.corrupt_entries == 0


class TestMakeBackend:
    def test_spec_forms(self, tmp_path):
        assert isinstance(make_backend(None), MemoryBackend)
        assert isinstance(make_backend("memory"), MemoryBackend)
        sqlite_store = make_backend(f"sqlite:{tmp_path}/a.db")
        assert isinstance(sqlite_store, SQLiteBackend)
        sqlite_store.close()
        assert isinstance(make_backend(f"dir:{tmp_path}/d"), DirectoryBackend)
        assert isinstance(
            make_backend(f"directory:{tmp_path}/d2"), DirectoryBackend
        )
        suffixed = make_backend(str(tmp_path / "b.sqlite3"))
        assert isinstance(suffixed, SQLiteBackend)
        suffixed.close()
        assert isinstance(
            make_backend(str(tmp_path / "plain")), DirectoryBackend
        )

    def test_instance_passthrough(self):
        backend = MemoryBackend()
        assert make_backend(backend) is backend

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            make_backend(42)


class TestEvaluationCacheWithBackends:
    def test_eviction_counter_reaches_stats(self):
        cache = EvaluationCache(max_entries=1)
        cache.put(KEY_A, "a")
        cache.put(KEY_B, "b")
        assert len(cache) == 1
        assert cache.stats.evictions == 1
        assert "evicted" in str(cache.stats)

    def test_write_only_reads_nothing_but_persists(self):
        backend = MemoryBackend()
        backend.put(KEY_A, "warm")
        cache = EvaluationCache(backend=backend, write_only=True)
        assert cache.get(KEY_A) is None  # refresh semantics
        assert cache.stats.misses == 1
        cache.put(KEY_A, "recomputed")
        assert backend.get(KEY_A) == "recomputed"

    @pytest.mark.parametrize("spec", ["sqlite:{}/evals.db", "dir:{}/store"])
    def test_engine_warm_start_is_bit_identical(self, tmp_path, spec, vopd_app):
        """A second engine over a warm store does zero evaluations."""
        spec = spec.format(tmp_path)
        cold_engine = ExplorationEngine(cache_backend=spec)
        cold = select_topology(
            vopd_app, routing="MP", config=FAST, engine=cold_engine
        )
        assert cold_engine.cache.stats.hits == 0
        _close(cold_engine)

        warm_engine = ExplorationEngine(cache_backend=spec)
        warm = select_topology(
            vopd_app, routing="MP", config=FAST, engine=warm_engine
        )
        assert warm_engine.cache.stats.misses == 0  # zero evaluations
        assert warm_engine.cache.stats.hits == cold_engine.cache.stats.misses
        assert warm.best_name == cold.best_name
        assert warm.table() == cold.table()
        for name, evaluation in cold.evaluations.items():
            warm_eval = warm.evaluations[name]
            assert warm_eval.cost == evaluation.cost
            assert warm_eval.assignment == evaluation.assignment
        _close(warm_engine)


def _close(engine) -> None:
    closer = getattr(engine.cache.backend, "close", None)
    if closer is not None:
        closer()


def _child_env() -> dict:
    import os

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestWriteErrors:
    """Failed cache writes are counted and surfaced, never raised."""

    def test_directory_backend_counts_failed_writes(self, tmp_path, caplog):
        backend = DirectoryBackend(tmp_path / "store")
        # Occupy the shard directory's path with a file: mkdir fails.
        shard = key_fingerprint(KEY_A)[:2]
        (backend.dir / shard).write_text("not a directory")
        with caplog.at_level("WARNING", logger="repro.engine.backends"):
            backend.put(KEY_A, {"cost": 1})
            backend.put(KEY_A, {"cost": 2})
        assert backend.write_errors == 2
        assert backend.get(KEY_A) is None  # dropped, not half-written
        # Only the first failure warns; repeats are demoted to debug.
        warnings = [
            r
            for r in caplog.records
            if r.levelname == "WARNING" and "write failed" in r.getMessage()
        ]
        assert len(warnings) == 1
        assert "first write failure" in warnings[0].getMessage()

    def test_sqlite_backend_counts_failed_writes(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "evals.db")
        backend._conn.close()  # simulate a store gone bad mid-run
        backend.put(KEY_A, {"cost": 1})
        assert backend.write_errors == 1

    def test_cache_stats_mirror_backend_write_errors(self, tmp_path):
        backend = DirectoryBackend(tmp_path / "store")
        shard = key_fingerprint(KEY_A)[:2]
        (backend.dir / shard).write_text("not a directory")
        cache = EvaluationCache(backend=backend)
        cache.put(KEY_A, {"cost": 1})
        assert cache.stats.write_errors == 1
        assert "1 write error" in str(cache.stats)

    def test_memory_backend_reports_zero(self):
        cache = EvaluationCache(backend=MemoryBackend())
        cache.put(KEY_A, "a")
        assert cache.stats.write_errors == 0
