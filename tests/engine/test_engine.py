"""The parallel exploration engine: determinism, caching, errors.

The engine's contract is that results are bit-identical to the serial
path no matter which executor runs the jobs or in which order they
finish — same winners, same costs, same assignments, same seeds.
"""

import random

import pytest

from repro.apps import dsp_filter, mpeg4, network_processor, vopd
from repro.core.coregraph import CoreGraph
from repro.core.exploration import minimum_bandwidth_per_routing
from repro.core.mapper import MapperConfig
from repro.core.selector import select_topology
from repro.engine import (
    EvaluationCache,
    EvaluationJob,
    ExplorationEngine,
    JobResult,
    ProcessExecutor,
    SerialExecutor,
    make_executor,
)
from repro.errors import ReproError, UnsupportedRoutingError
from repro.sunmap import run_sunmap
from repro.topology.library import make_topology

#: Single-pass swap search keeps engine tests fast; determinism holds for
#: any config because seeds and reduction order are content-derived.
FAST = MapperConfig(converge=False, swap_rounds=1)

APPS = {
    "vopd": vopd,
    "mpeg4": mpeg4,
    "dsp": dsp_filter,
    "netproc": network_processor,
}


def job_for(app, topology_name="mesh", **kwargs) -> EvaluationJob:
    topology = make_topology(topology_name, app.num_cores)
    kwargs.setdefault("config", FAST)
    return EvaluationJob(
        core_graph=app, topology=topology, tag=topology.name, **kwargs
    )


def selection_digest(selection) -> list:
    """Everything observable about a selection outcome."""
    rows = []
    for name, ev in selection.evaluations.items():
        rows.append(
            (
                name,
                round(ev.cost, 9),
                ev.feasible,
                None if ev.area_mm2 is None else round(ev.area_mm2, 9),
                None if ev.power_mw is None else round(ev.power_mw, 9),
                tuple(sorted(ev.assignment.items())),
            )
        )
    rows.append(("errors", tuple(sorted(selection.errors.items()))))
    rows.append(("best", selection.best_name))
    return rows


class TestExecutors:
    def test_make_executor_mapping(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(4), ProcessExecutor)
        assert make_executor(4).max_workers == 4
        assert isinstance(make_executor(0), ProcessExecutor)

    def test_make_executor_rejects_negative(self):
        with pytest.raises(ReproError):
            make_executor(-2)

    def test_named_executor(self):
        assert isinstance(make_executor(name="serial"), SerialExecutor)
        assert isinstance(make_executor(name="process"), ProcessExecutor)
        with pytest.raises(ReproError):
            make_executor(name="threads")


class TestCache:
    def test_second_run_is_served_from_cache(self, tiny_app):
        engine = ExplorationEngine()
        job = job_for(tiny_app)
        first = engine.run_one(job)
        second = engine.run_one(job)
        assert not first.cached
        assert second.cached
        assert second.evaluation.cost == first.evaluation.cost
        assert engine.cache.stats.hits == 1
        assert engine.cache.stats.misses == 1

    def test_duplicate_jobs_in_one_batch_execute_once(self, tiny_app):
        engine = ExplorationEngine()
        job = job_for(tiny_app)
        results = engine.run([job, job, job])
        assert [r.cached for r in results] == [False, True, True]
        assert engine.cache.stats.misses == 1
        assert engine.cache.stats.hits == 2
        costs = {r.evaluation.cost for r in results}
        assert len(costs) == 1

    def test_cache_shared_across_engines(self, tiny_app):
        cache = EvaluationCache()
        job = job_for(tiny_app)
        ExplorationEngine(cache=cache).run_one(job)
        result = ExplorationEngine(cache=cache).run_one(job)
        assert result.cached

    def test_placement_variants_do_not_share_cache_keys(self, tiny_app):
        # Same connectivity, different placement: the floorplanner groups
        # blocks into columns by x coordinate, so these must not collide.
        from repro.topology.custom import CustomTopology

        row = CustomTopology(
            "t", [0, 1, 2, 3], [(0, 1), (1, 2), (2, 3)],
            positions={0: (0, 0), 1: (1, 0), 2: (2, 0), 3: (3, 0)},
        )
        column = CustomTopology(
            "t", [0, 1, 2, 3], [(0, 1), (1, 2), (2, 3)],
            positions={0: (0, 0), 1: (0, 1), 2: (0, 2), 3: (0, 3)},
        )
        a = EvaluationJob(core_graph=tiny_app, topology=row, config=FAST)
        b = EvaluationJob(core_graph=tiny_app, topology=column, config=FAST)
        assert a.cache_key() != b.cache_key()

    def test_tag_does_not_affect_cache_key(self, tiny_app):
        a = job_for(tiny_app)
        b = EvaluationJob(
            core_graph=a.core_graph,
            topology=a.topology,
            config=FAST,
            tag="other-tag",
        )
        assert a.cache_key() == b.cache_key()

    def test_mutating_a_result_does_not_poison_the_cache(self, tiny_app):
        engine = ExplorationEngine()
        job = job_for(tiny_app, collect=True)
        first = engine.run_one(job)
        assert first.collected
        first.collected.clear()
        second = engine.run_one(job)
        assert second.cached
        assert second.collected

    def test_bounded_cache_evicts_oldest(self, tiny_app):
        cache = EvaluationCache(max_entries=1)
        engine = ExplorationEngine(cache=cache)
        engine.run_one(job_for(tiny_app, "mesh"))
        engine.run_one(job_for(tiny_app, "ring"))
        assert len(cache) == 1
        assert not engine.run_one(job_for(tiny_app, "mesh")).cached

    def test_parameterized_estimator_subclasses_do_not_collide(self, tiny_app):
        from repro.physical.estimate import NetworkEstimator

        class ScaledEstimator(NetworkEstimator):
            def __init__(self, derate):
                super().__init__()
                self.derate = derate

        a = job_for(tiny_app, estimator=ScaledEstimator(0.8))
        b = job_for(tiny_app, estimator=ScaledEstimator(0.5))
        c = job_for(tiny_app, estimator=NetworkEstimator())
        assert a.cache_key() != b.cache_key()
        assert a.cache_key() != c.cache_key()

    def test_zero_capacity_cache_disables_caching(self, tiny_app):
        cache = EvaluationCache(max_entries=0)
        engine = ExplorationEngine(cache=cache)
        first = engine.run_one(job_for(tiny_app))
        second = engine.run_one(job_for(tiny_app))
        assert not first.cached and not second.cached
        assert len(cache) == 0


class TestSeeds:
    def test_seed_is_stable_and_content_derived(self, tiny_app):
        a, b = job_for(tiny_app), job_for(tiny_app)
        assert a.resolved_seed() == b.resolved_seed()

    def test_seed_differs_per_candidate(self, tiny_app):
        assert (
            job_for(tiny_app, "mesh").resolved_seed()
            != job_for(tiny_app, "ring").resolved_seed()
        )

    def test_explicit_seed_wins(self, tiny_app):
        assert job_for(tiny_app, seed=7).resolved_seed() == 7

    def test_explicit_seeds_get_distinct_cache_entries(self, tiny_app):
        # Jobs differing only in seed must not share cached results
        # (matters once a stochastic search consumes the seed).
        engine = ExplorationEngine()
        first = engine.run_one(job_for(tiny_app, seed=1))
        second = engine.run_one(job_for(tiny_app, seed=2))
        assert not second.cached
        assert (first.seed, second.seed) == (1, 2)

    def test_global_rng_state_restored_after_in_process_job(self, tiny_app):
        # Serial jobs run in the caller's process; they must not clobber
        # the caller's own random state.
        random.seed(42)
        expected = random.random()
        random.seed(42)
        ExplorationEngine().run_one(job_for(tiny_app))
        assert random.random() == expected


class TestErrorCapture:
    def test_too_many_cores_is_captured(self):
        app = CoreGraph("too-big")
        for i in range(6):
            app.add_core(f"c{i}")
        app.add_flow("c0", "c1", 10.0)
        topology = make_topology("mesh", 4)  # 4 slots < 6 cores
        result = ExplorationEngine().run_one(
            EvaluationJob(core_graph=app, topology=topology, config=FAST)
        )
        assert not result.ok
        assert result.error_type == "MappingInfeasibleError"
        with pytest.raises(ReproError):
            result.raise_if_error()

    def test_error_class_recognizes_subclasses(self):
        class CustomUnsupported(UnsupportedRoutingError):
            pass

        result = JobResult(
            tag="t", error="no route", error_type="CustomUnsupported"
        )
        assert result.error_class is CustomUnsupported
        assert result.is_unsupported_routing()
        with pytest.raises(CustomUnsupported):
            result.raise_if_error()

    def test_unknown_error_type_falls_back_to_repro_error(self):
        result = JobResult(tag="t", error="boom", error_type="Mystery")
        assert result.error_class is ReproError
        assert not result.is_unsupported_routing()

    def test_unsupported_routing_matches_serial_selector(self, tiny_app):
        # DO routing is undefined on Clos: the selector records the error
        # identically whether jobs run serially or through a pool.
        topologies = [make_topology("mesh", 4), make_topology("clos", 4)]
        serial = select_topology(
            tiny_app, topologies=topologies, routing="DO", config=FAST
        )
        parallel = select_topology(
            tiny_app, topologies=topologies, routing="DO", config=FAST,
            jobs=2,
        )
        assert serial.errors and "clos" in next(iter(serial.errors))
        assert selection_digest(serial) == selection_digest(parallel)


class TestParallelDeterminism:
    @pytest.mark.parametrize("app_name", sorted(APPS))
    def test_selection_identical_serial_vs_jobs4(self, app_name):
        app = APPS[app_name]()
        serial = select_topology(app, objective="hops", config=FAST)
        parallel = select_topology(
            app, objective="hops", config=FAST, jobs=4
        )
        assert selection_digest(serial) == selection_digest(parallel)

    def test_sunmap_report_identical_serial_vs_jobs4(self, vopd_app):
        serial = run_sunmap(vopd_app, objective="hops", config=FAST)
        parallel = run_sunmap(
            vopd_app, objective="hops", config=FAST, jobs=4
        )
        assert serial.best_topology_name == parallel.best_topology_name
        assert serial.attempted_routings == parallel.attempted_routings
        assert selection_digest(serial.selection) == selection_digest(
            parallel.selection
        )
        assert serial.summary() == parallel.summary()
        assert serial.systemc == parallel.systemc

    def test_bandwidth_sweep_identical_serial_vs_jobs2(self, tiny_app):
        topology = make_topology("mesh", 4)
        serial = minimum_bandwidth_per_routing(
            tiny_app, topology, config=FAST
        )
        parallel = minimum_bandwidth_per_routing(
            tiny_app, topology, config=FAST, jobs=2
        )
        assert serial == parallel

    def test_selection_accepts_one_shot_iterables(self, tiny_app):
        topologies = (t for t in [make_topology("mesh", 4)])
        selection = select_topology(
            tiny_app, topologies=topologies, config=FAST
        )
        assert selection.evaluations
        assert selection.best_name is not None

    def test_sweep_grid_runs_every_candidate(self, tiny_app):
        engine = ExplorationEngine()
        results = engine.sweep(
            tiny_app,
            topologies=[make_topology("mesh", 4)],
            routings=("MP", "SM"),
            objectives=("hops", "bandwidth"),
            config=FAST,
        )
        assert len(results) == 4
        assert all(r.ok for r in results.values())
        names = {key[0] for key in results}
        assert names == {make_topology("mesh", 4).name}
