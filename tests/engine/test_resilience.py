"""Chaos suite for the resilient execution runtime.

Workers are killed mid-job (``os._exit`` crash bombs), jobs sleep past
their wall-clock budget, transient failures strike N times before a
success — and the runtime must degrade exactly as specified: innocents
finish untouched, pools rebuild, retries re-run the *same* seeded job
bit-identically, exhausted budgets surface as typed
:class:`~repro.engine.resilience.JobFailure` results, and a journaled
run killed mid-sweep resumes bit-identically with ``--resume``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.core.mapper import MapperConfig
from repro.engine import (
    EvaluationJob,
    ExplorationEngine,
    JobFailure,
    ProcessExecutor,
    RetryPolicy,
    RunJournal,
    SerialExecutor,
    classify_failure,
    key_fingerprint,
    open_journal,
)
from repro.engine.jobs import JobResult, hash_seed, run_job
from repro.engine.resilience import failure_from
from repro.errors import (
    JobFailedError,
    MappingInfeasibleError,
    ReproError,
    RetryableError,
    ServiceBusyError,
    WorkerCrashError,
)
from repro.simulation.campaign import CampaignConfig, run_campaign
from repro.topology.library import make_topology

#: Retries with near-zero backoff keep the chaos tests fast.
FAST_RETRY = RetryPolicy(
    max_attempts=3, backoff_base_s=0.001, max_backoff_s=0.002
)
FAST_MAPPER = MapperConfig(converge=False, swap_rounds=1)


@dataclass(frozen=True)
class ChaosJob:
    """Minimal picklable job whose behaviour is directed by ``action``.

    ``scratch`` (a per-test temp directory) carries an attempt counter
    across worker processes, so tests can assert exactly how many times
    a job really executed.
    """

    tag: str
    action: str = "ok"   # ok | crash | sleep | flaky | fatal | pid
    value: float = 0.0
    scratch: str | None = None
    fail_times: int = 0

    def cache_key(self) -> tuple:
        return ("chaos", self.tag, self.action, self.value, self.fail_times)

    def resolved_seed(self) -> int:
        return hash_seed(self.cache_key())

    def pinned(self, key: tuple) -> "ChaosJob":
        return self


def _bump_attempts(job: ChaosJob) -> int:
    """Count this execution in the cross-process scratch file."""
    if job.scratch is None:
        return 1
    path = Path(job.scratch) / f"{job.tag}.attempts"
    count = int(path.read_text()) if path.exists() else 0
    path.write_text(str(count + 1))
    return count + 1


def chaos_fn(job: ChaosJob) -> JobResult:
    """Executor-side chaos dispatcher (module-level: must pickle)."""
    attempt = _bump_attempts(job)
    if job.action == "crash":
        os._exit(17)
    if job.action == "sleep":
        time.sleep(job.value)
    if job.action == "flaky" and attempt <= job.fail_times:
        raise OSError(f"transient failure #{attempt} of {job.tag}")
    if job.action == "fatal":
        raise MappingInfeasibleError(f"{job.tag} is deterministically out")
    payload = os.getpid() if job.action == "pid" else job.value
    return JobResult(tag=job.tag, value=payload, seed=job.resolved_seed())


def attempts_of(scratch, job: ChaosJob) -> int:
    path = Path(scratch) / f"{job.tag}.attempts"
    return int(path.read_text()) if path.exists() else 0


def run_all(executor, jobs) -> dict[int, JobResult]:
    return dict(executor.run(chaos_fn, list(enumerate(jobs))))


class TestFailureTaxonomy:
    def test_transient_failures_are_retryable(self):
        for exc in (
            OSError("pipe"),
            TimeoutError("late"),
            BrokenProcessPool("worker died"),
            RetryableError("explicit"),
            ServiceBusyError("full"),  # RetryableError subclass
        ):
            assert classify_failure(exc), exc

    def test_domain_and_unknown_errors_are_final(self):
        for exc in (
            ReproError("domain"),
            MappingInfeasibleError("no mapping"),
            ValueError("a bug"),
            RuntimeError("another bug"),
        ):
            assert not classify_failure(exc), exc


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base_s": -1.0},
            {"max_backoff_s": -0.1},
            {"jitter": 1.5},
            {"timeout_s": 0.0},
        ],
    )
    def test_invalid_knobs_are_rejected(self, kwargs):
        with pytest.raises(ReproError):
            RetryPolicy(**kwargs)

    def test_backoff_is_deterministic_in_seed_and_attempt(self):
        policy = RetryPolicy()
        assert policy.delay_s(2, 123) == policy.delay_s(2, 123)
        assert policy.delay_s(1, 123) != policy.delay_s(2, 123)

    def test_backoff_is_bounded(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=3.0, max_backoff_s=0.5,
            jitter=0.5,
        )
        for attempt in range(1, 10):
            delay = policy.delay_s(attempt, seed=7)
            base = min(0.5, 0.1 * 3.0 ** (attempt - 1))
            assert base * 0.5 <= delay <= base


class TestJobFailure:
    def test_captured_exception_is_reraised_verbatim(self):
        original = ValueError("the actual bug")
        failure = failure_from(
            ChaosJob("j"), original, attempts=1, kind="error"
        )
        assert failure.to_exception() is original
        with pytest.raises(ValueError, match="the actual bug"):
            failure.raise_if_error()

    def test_uncaptured_exception_becomes_job_failed_error(self):
        failure = JobFailure(
            tag="bomb", error="boom", attempts=3, failure_kind="crash"
        )
        exc = failure.to_exception()
        assert isinstance(exc, JobFailedError)
        assert "bomb" in str(exc) and "3 attempt" in str(exc)

    def test_failure_fields_and_ok_flag(self):
        failure = failure_from(
            ChaosJob("t"), OSError("pipe"), attempts=2, kind="error"
        )
        assert not failure.ok
        assert failure.error_type == "OSError"
        assert failure.attempts == 2
        assert failure.seed == ChaosJob("t").resolved_seed()

    def test_retagged_preserves_the_failure_subclass(self):
        failure = failure_from(
            ChaosJob("t"), OSError("pipe"), attempts=2, kind="timeout"
        )
        copy = failure.retagged("renamed", cached=False)
        assert isinstance(copy, JobFailure)
        assert copy.attempts == 2
        assert copy.failure_kind == "timeout"
        assert copy.tag == "renamed"


class TestSerialResilience:
    def test_flaky_job_recovers_bit_identically(self, tmp_path):
        flaky = ChaosJob(
            "flaky", action="flaky", value=4.5,
            scratch=str(tmp_path), fail_times=2,
        )
        result = run_all(SerialExecutor(policy=FAST_RETRY), [flaky])[0]
        assert result.ok
        assert attempts_of(tmp_path, flaky) == 3
        # A retried success is indistinguishable from a first-try one.
        clean = chaos_fn(ChaosJob("flaky", action="ok", value=4.5))
        assert result.value == clean.value

    def test_exhausted_budget_yields_typed_failure(self, tmp_path):
        doomed = ChaosJob(
            "doomed", action="flaky", scratch=str(tmp_path), fail_times=99
        )
        result = run_all(SerialExecutor(policy=FAST_RETRY), [doomed])[0]
        assert isinstance(result, JobFailure)
        assert result.attempts == FAST_RETRY.max_attempts
        assert attempts_of(tmp_path, doomed) == FAST_RETRY.max_attempts

    def test_fatal_error_is_not_retried(self, tmp_path):
        fatal = ChaosJob("fatal", action="fatal", scratch=str(tmp_path))
        result = run_all(SerialExecutor(policy=FAST_RETRY), [fatal])[0]
        assert isinstance(result, JobFailure)
        assert result.attempts == 1
        assert result.failure_kind == "error"
        assert attempts_of(tmp_path, fatal) == 1


class TestProcessResilience:
    def test_crash_bomb_spares_innocent_neighbours(self, tmp_path):
        jobs = [
            ChaosJob("a", value=1.0),
            ChaosJob("bomb", action="crash", scratch=str(tmp_path)),
            ChaosJob("b", value=2.0),
            ChaosJob("c", value=3.0),
        ]
        executor = ProcessExecutor(
            max_workers=2,
            policy=RetryPolicy(
                max_attempts=2, backoff_base_s=0.001, max_backoff_s=0.002
            ),
        )
        results = run_all(executor, jobs)
        bomb = results[1]
        assert isinstance(bomb, JobFailure)
        assert bomb.failure_kind == "crash"
        assert bomb.attempts == 2
        assert "worker process died" in bomb.error
        for index, value in ((0, 1.0), (2, 2.0), (3, 3.0)):
            assert results[index].ok
            assert results[index].value == value
        assert executor.pool_rebuilds >= 1

    def test_wedged_job_is_timed_out_and_killed(self):
        jobs = [
            ChaosJob("wedged", action="sleep", value=60.0),
            ChaosJob("quick", value=7.0),
        ]
        executor = ProcessExecutor(
            max_workers=2,
            policy=RetryPolicy(max_attempts=1, timeout_s=0.5),
        )
        start = time.monotonic()
        results = run_all(executor, jobs)
        assert time.monotonic() - start < 30.0  # nobody waited the 60s out
        wedged = results[0]
        assert isinstance(wedged, JobFailure)
        assert wedged.failure_kind == "timeout"
        assert "wall-clock budget" in wedged.error
        assert results[1].ok and results[1].value == 7.0

    def test_pool_flaky_retry_matches_clean_run(self, tmp_path):
        flaky = ChaosJob(
            "poolflaky", action="flaky", value=9.0,
            scratch=str(tmp_path), fail_times=1,
        )
        results = run_all(
            ProcessExecutor(max_workers=2, policy=FAST_RETRY),
            [flaky, ChaosJob("peer", value=1.0)],
        )
        assert results[0].ok
        assert results[0].value == 9.0
        assert results[0].seed == flaky.resolved_seed()
        assert attempts_of(tmp_path, flaky) == 2

    def test_single_job_runs_in_process_without_timeout(self):
        result = run_all(
            ProcessExecutor(max_workers=4, policy=FAST_RETRY),
            [ChaosJob("solo", action="pid")],
        )[0]
        assert result.value == os.getpid()  # fast path: no pool spawned

    def test_single_job_uses_a_pool_when_a_timeout_is_set(self):
        result = run_all(
            ProcessExecutor(
                max_workers=4,
                policy=RetryPolicy(max_attempts=1, timeout_s=30.0),
            ),
            [ChaosJob("solo", action="pid")],
        )[0]
        assert result.ok
        assert result.value != os.getpid()  # a killable worker ran it


class FailingExecutor:
    """Engine-test stub: fails the given submission indexes."""

    name = "failing"

    def __init__(self, fail_indexes, exception=None, kind="crash"):
        self.fail_indexes = set(fail_indexes)
        self.exception = exception
        self.kind = kind

    def run(self, fn, indexed_jobs):
        for position, (index, job) in enumerate(indexed_jobs):
            if position in self.fail_indexes:
                exc = self.exception or WorkerCrashError(
                    f"chaos took {job.tag or index!r}"
                )
                yield index, failure_from(job, exc, attempts=3, kind=self.kind)
            else:
                yield index, fn(job)


def tiny_jobs(tiny_app, topologies=("mesh", "ring")) -> list[EvaluationJob]:
    return [
        EvaluationJob(
            core_graph=tiny_app,
            topology=make_topology(name, tiny_app.num_cores),
            config=FAST_MAPPER,
            tag=name,
        )
        for name in topologies
    ]


class TestEngineFailureHandling:
    def test_on_failure_raise_reraises_the_original(self, tiny_app):
        sentinel = ValueError("the original exception object")
        engine = ExplorationEngine(
            executor=FailingExecutor([0], exception=sentinel, kind="error")
        )
        with pytest.raises(ValueError) as excinfo:
            engine.run(tiny_jobs(tiny_app))
        assert excinfo.value is sentinel
        assert engine.failure_stats["error"] == 1
        assert engine.last_failures == []

    def test_on_failure_skip_surfaces_typed_failures(self, tiny_app):
        engine = ExplorationEngine(executor=FailingExecutor([0]))
        jobs = tiny_jobs(tiny_app)
        results = engine.run(jobs, on_failure="skip")
        assert isinstance(results[0], JobFailure)
        assert results[0].tag == jobs[0].tag
        assert results[1].ok
        assert len(engine.last_failures) == 1
        assert engine.failure_stats["crash"] == 1

    def test_failures_are_never_cached_or_journaled(self, tiny_app, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        engine = ExplorationEngine(
            executor=FailingExecutor([0, 1]), journal=journal
        )
        jobs = tiny_jobs(tiny_app)
        engine.run(jobs, on_failure="skip")
        assert len(journal) == 0
        assert engine.cache.get(jobs[0].cache_key()) is None
        # The same engine retries the work on the next run (no poison).
        engine.executor = SerialExecutor()
        results = engine.run(jobs)
        assert all(r.ok for r in results)
        assert len(journal) == len(jobs)

    def test_invalid_on_failure_is_rejected(self, tiny_app):
        engine = ExplorationEngine()
        with pytest.raises(ReproError):
            engine.run(tiny_jobs(tiny_app), on_failure="ignore")


class TestCampaignResilience:
    CONFIG = CampaignConfig(
        rates=(0.05, 0.1),
        patterns=("uniform", "transpose"),
        seeds=(1,),
        warmup=20,
        measure=60,
        drain=20,
    )

    def test_failed_points_degrade_the_sweep(self, tiny_app):
        topology = make_topology("mesh", tiny_app.num_cores)
        engine = ExplorationEngine(executor=FailingExecutor([0]))
        result = run_campaign(
            topology, config=self.CONFIG, engine=engine, on_failure="skip"
        )
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.kind == "crash"
        assert failure.attempts == 3
        assert (failure.pattern, failure.rate) in {
            ("uniform", 0.05), ("transpose", 0.05),
        }
        assert len(result.points) == 3  # the other points survived
        assert "failed points" in result.summary()
        assert result.to_dict()["failures"][0]["kind"] == "crash"

    def test_clean_run_report_shape_is_unchanged(self, tiny_app):
        topology = make_topology("mesh", tiny_app.num_cores)
        result = run_campaign(topology, config=self.CONFIG)
        assert result.failures == []
        assert not result.degraded
        for absent in ("failures", "degraded", "skipped_points"):
            assert absent not in result.to_dict()

    def test_deadline_returns_partial_results_flagged_degraded(
        self, tiny_app
    ):
        topology = make_topology("mesh", tiny_app.num_cores)
        result = run_campaign(
            topology, config=self.CONFIG, deadline_s=1e-9
        )
        # The first chunk always runs; the rest is shed, and says so.
        assert result.degraded
        assert result.skipped_points == 2
        assert len(result.points) == 2
        assert "DEGRADED" in result.summary()
        dumped = result.to_dict()
        assert dumped["degraded"] is True
        assert dumped["skipped_points"] == 2


def digest(results) -> list[tuple]:
    """Everything observable about evaluation results (minus cached)."""
    return [
        (
            r.tag,
            r.seed,
            round(r.evaluation.cost, 12),
            tuple(sorted(r.evaluation.assignment.items())),
        )
        for r in results
    ]


class TestJournal:
    def test_record_then_resume_replays_equal_results(self, tmp_path):
        path = tmp_path / "run.jsonl"
        recorded = JobResult(tag="", value=42.5, seed=7)
        with RunJournal(path) as journal:
            journal.record("fp-1", recorded)
            journal.record("fp-2", JobResult(tag="", value=1.0, seed=9))
        resumed = RunJournal(path, resume=True)
        assert resumed.stats.loaded == 2
        assert resumed.get("fp-1") == recorded
        assert resumed.get("fp-2") is not None
        assert resumed.get("missing") is None
        assert "fp-2" in resumed and len(resumed) == 2
        assert resumed.stats.replayed == 2
        resumed.close()

    def test_fresh_open_truncates_stale_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record("fp-1", JobResult(tag="", value=1.0))
        with RunJournal(path, resume=False) as journal:
            assert len(journal) == 0
        assert path.read_bytes() == b""

    def test_torn_tail_is_truncated_not_trusted(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record("fp-1", JobResult(tag="", value=1.0))
        intact = path.read_bytes()
        # A SIGKILL mid-write leaves a partial line with no newline.
        path.write_bytes(intact + b'{"format":"repro-journal-v1","fing')
        journal = RunJournal(path, resume=True)
        assert journal.stats.loaded == 1
        assert journal.stats.truncated == 1
        assert journal.get("fp-1") is not None
        journal.record("fp-2", JobResult(tag="", value=2.0))
        journal.close()
        assert RunJournal(path, resume=True).stats.loaded == 2
        assert path.read_bytes().startswith(intact)

    def test_garbage_file_resumes_as_empty(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_bytes(b"not a journal at all\n\x00\xff\n")
        journal = RunJournal(path, resume=True)
        assert len(journal) == 0
        assert journal.stats.truncated == 2
        assert path.read_bytes() == b""

    def test_open_journal_helper(self, tmp_path):
        assert open_journal(None) is None
        assert open_journal("") is None
        with pytest.raises(ReproError, match="--resume requires"):
            open_journal(None, resume=True)
        journal = open_journal(tmp_path / "j.jsonl")
        assert isinstance(journal, RunJournal)
        journal.close()

    def test_engine_resume_is_bit_identical(self, tiny_app, tmp_path):
        path = tmp_path / "run.jsonl"
        jobs = tiny_jobs(tiny_app, ("mesh", "ring", "star"))
        with RunJournal(path) as journal:
            first = ExplorationEngine(journal=journal).run(jobs)
        # Fresh engine, empty cache: everything must come from replay.
        journal = RunJournal(path, resume=True)
        engine = ExplorationEngine(journal=journal)
        second = engine.run(jobs)
        assert digest(second) == digest(first)
        assert all(r.cached for r in second)
        assert journal.stats.replayed == len(jobs)
        assert journal.stats.recorded == 0
        # And identical to a run that never involved a journal at all.
        bare = ExplorationEngine().run(jobs)
        assert digest(bare) == digest(first)
        journal.close()


CLI_CAMPAIGN = [
    "simulate", "--app", "vopd", "--topology", "mesh",
    "--rates", "0.05,0.08,0.1", "--patterns", "uniform,transpose",
    "--seeds", "1", "--cycles", "800", "--warmup", "150", "--drain", "300",
]


def run_cli(args, timeout=300):
    repo = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(repo / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, timeout=timeout, env=env,
        cwd=repo,
    )


class TestCliKillResume:
    def test_killed_campaign_resumes_bit_identically(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        repo = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(repo / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        victim = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", *CLI_CAMPAIGN,
                "--journal", str(journal),
            ],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            env=env, cwd=repo,
        )
        # Let it journal at least one completed point, then kill it the
        # hard way (no cleanup handlers run).
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if journal.exists() and journal.stat().st_size > 0:
                break
            if victim.poll() is not None:
                break  # finished whole; resume will replay everything
            time.sleep(0.05)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)
        assert journal.exists() and journal.stat().st_size > 0

        resumed = run_cli(
            [*CLI_CAMPAIGN, "--journal", str(journal), "--resume"]
        )
        assert resumed.returncode == 0, resumed.stderr
        clean = run_cli(CLI_CAMPAIGN)
        assert clean.returncode == 0, clean.stderr
        assert _strip_runtime_lines(resumed.stdout) == _strip_runtime_lines(
            clean.stdout
        )


def _strip_runtime_lines(text: str) -> str:
    """Drop the summary's wall-clock line — the one legitimately
    non-deterministic output (see CampaignResult.summary)."""
    return "\n".join(
        line
        for line in text.splitlines()
        if not line.startswith("runtime")
    )
