"""Serialization (repro.io) and text rendering (repro.report)."""

import json

import pytest

from repro.core.mapper import MapperConfig, map_onto
from repro.core.selector import select_topology
from repro.errors import CoreGraphError
from repro.floorplan.lp import floorplan_mapping
from repro.io import (
    core_graph_from_dict,
    core_graph_to_dict,
    custom_topology_from_dict,
    custom_topology_to_dict,
    load_core_graph,
    load_topology,
    save_core_graph,
    save_selection,
    save_topology,
    selection_to_dict,
)
from repro.report import (
    render_floorplan,
    render_mapping,
    selection_to_markdown,
)
from repro.topology.library import make_topology

FAST = MapperConfig(converge=False, swap_rounds=1)


class TestCoreGraphIO:
    def test_round_trip_preserves_everything(self, vopd_app):
        clone = core_graph_from_dict(core_graph_to_dict(vopd_app))
        assert clone.name == vopd_app.name
        assert clone.num_cores == vopd_app.num_cores
        assert clone.flows() == vopd_app.flows()
        for i in range(vopd_app.num_cores):
            assert clone.core(i).name == vopd_app.core(i).name
            assert clone.core(i).area_mm2 == vopd_app.core(i).area_mm2

    def test_file_round_trip(self, dsp_app, tmp_path):
        path = tmp_path / "dsp.json"
        save_core_graph(dsp_app, path)
        clone = load_core_graph(path)
        assert clone.flows() == dsp_app.flows()

    def test_defaults_filled_in(self):
        payload = {
            "name": "mini",
            "cores": [{"name": "a"}, {"name": "b"}],
            "flows": [{"src": "a", "dst": "b", "bandwidth_mb_s": 10.0}],
        }
        graph = core_graph_from_dict(payload)
        assert graph.core("a").area_mm2 == 2.0
        assert graph.core("a").is_soft

    def test_missing_field_rejected(self):
        with pytest.raises(CoreGraphError):
            core_graph_from_dict({"name": "x", "cores": [{}], "flows": []})

    def test_json_is_valid(self, tiny_app, tmp_path):
        path = tmp_path / "tiny.json"
        save_core_graph(tiny_app, path)
        payload = json.loads(path.read_text())
        assert payload["name"] == "tiny"
        assert len(payload["flows"]) == 4


class TestTopologyIO:
    def _fabric(self):
        from repro.topology.custom import CustomTopology

        return CustomTopology(
            name="fab",
            slot_switch=[0, 0, 1, 2, 2],
            links=[(0, 1), (0, 1), (1, 2)],
            positions={0: (0.0, 0.0), 1: (1.0, 0.0), 2: (2.0, 1.0)},
        )

    def test_round_trip_preserves_everything(self):
        topo = self._fabric()
        clone = custom_topology_from_dict(custom_topology_to_dict(topo))
        assert clone.name == topo.name
        assert clone.slot_switch == topo.slot_switch
        assert clone.link_multiplicity() == topo.link_multiplicity()
        assert clone.switch_positions() == topo.switch_positions()

    def test_file_round_trip_re_evaluates_identically(
        self, tiny_app, tmp_path
    ):
        """A saved synthesized fabric reloads and re-evaluates to the
        exact numbers of the original — no synthesis re-run needed."""
        from repro.synthesis import SynthesisConfig, synthesize_topologies

        result = synthesize_topologies(
            tiny_app,
            config=SynthesisConfig(
                strategies=("greedy",),
                concentrations=(2,),
                max_switch_degrees=(4,),
            ),
        )
        best = result.best
        assert best is not None
        path = tmp_path / "fabric.json"
        save_topology(best.topology, path)
        clone = load_topology(path)
        ev = map_onto(tiny_app, clone, routing="MP", objective="hops")
        assert ev.avg_hops == best.evaluation.avg_hops
        assert ev.power_mw == best.evaluation.power_mw
        assert ev.max_link_load == best.evaluation.max_link_load

    def test_missing_field_rejected(self):
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            custom_topology_from_dict({"name": "x", "links": []})

    def test_default_positions_allowed(self):
        clone = custom_topology_from_dict(
            {
                "name": "bare",
                "slot_switch": [0, 1],
                "links": [{"a": 0, "b": 1}],
            }
        )
        assert clone.num_slots == 2


class TestSelectionIO:
    def test_selection_dict_shape(self, tiny_app, tmp_path):
        selection = select_topology(tiny_app, routing="MP", config=FAST)
        payload = selection_to_dict(selection)
        assert payload["best"] == selection.best_name
        assert len(payload["rows"]) == 5
        path = tmp_path / "sel.json"
        save_selection(selection, path)
        assert json.loads(path.read_text())["routing"] == "MP"


class TestReport:
    def test_render_floorplan_contains_labels(self, dsp_app):
        topo = make_topology("mesh", 6)
        assignment = {i: i for i in range(6)}
        fp = floorplan_mapping(topo, assignment, dsp_app)
        text = render_floorplan(fp, dsp_app)
        assert "mm2" in text
        assert "arm" in text
        assert "#" in text and "+" in text

    def test_render_mapping(self, tiny_app):
        topo = make_topology("mesh", 4)
        ev = map_onto(tiny_app, topo, config=FAST)
        text = render_mapping(ev)
        assert "tiny on mesh-2x2" in text
        assert "avg hops" in text
        assert "c0" in text

    def test_selection_markdown(self, tiny_app):
        selection = select_topology(tiny_app, routing="MP", config=FAST)
        md = selection_to_markdown(selection)
        assert md.startswith("| topology |")
        assert "**x**" in md  # a winner is marked
        assert md.count("\n") >= 6


class TestCliIntegration:
    def test_select_from_app_file(self, tiny_app, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "app.json"
        save_core_graph(tiny_app, path)
        assert main(["select", "--app-file", str(path)]) == 0
        assert "best:" in capsys.readouterr().out

    def test_select_markdown_and_save(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "sel.json"
        assert main([
            "select", "--app", "dsp", "--capacity", "1000",
            "--markdown", "--save", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "| topology |" in text
        assert out.exists()

    def test_missing_app_is_an_error(self, capsys):
        from repro.cli import main

        assert main(["select"]) == 1
        assert "provide --app or --app-file" in capsys.readouterr().err
