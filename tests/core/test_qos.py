"""QoS per-flow hop bounds (paper future work, realized)."""

from repro.core.constraints import Constraints, qos_feasible
from repro.core.mapper import MapperConfig, map_onto
from repro.core.selector import select_topology
from repro.routing.library import make_routing
from repro.topology.library import make_topology

FAST = MapperConfig(converge=False, swap_rounds=1)


class TestQosCheck:
    def test_unbounded_always_feasible(self, tiny_app):
        topo = make_topology("mesh", 4)
        result = make_routing("MP").route_all(
            topo, {i: i for i in range(4)}, tiny_app.commodities()
        )
        ok, violations = qos_feasible(result, Constraints())
        assert ok and not violations

    def test_tight_bound_reports_violations(self, tiny_app):
        topo = make_topology("mesh", 6)  # 2x3
        # Put communicating pairs at opposite corners.
        assignment = {0: 0, 1: 5, 2: 2, 3: 3}
        result = make_routing("MP").route_all(
            topo, assignment, tiny_app.commodities()
        )
        ok, violations = qos_feasible(
            result, Constraints(max_flow_hops=2)
        )
        assert not ok
        assert violations
        for _src, _dst, hops in violations:
            assert hops > 2

    def test_bound_respected_in_evaluation(self, tiny_app):
        topo = make_topology("mesh", 4)
        ev = map_onto(
            tiny_app, topo, routing="MP", objective="hops",
            constraints=Constraints(max_flow_hops=2), config=FAST,
        )
        # 2x2 mesh: every pair is at most 3 switches; the chain
        # c0->c1->c2->c3->c0 can be placed as a ring -> all 2 hops.
        assert ev.feasible
        assert ev.qos_feasible

    def test_impossible_bound_marks_infeasible(self, tiny_app):
        topo = make_topology("clos", 4)  # every route is 3 switches
        ev = map_onto(
            tiny_app, topo, routing="MP", objective="hops",
            constraints=Constraints(max_flow_hops=2), config=FAST,
        )
        assert not ev.feasible
        assert not ev.qos_feasible
        assert len(ev.qos_violations) == tiny_app.num_flows

    def test_qos_steers_selection(self, tiny_app):
        """With a 2-hop guarantee, the 3-stage Clos drops out of the
        running while 2-hop-capable topologies survive."""
        selection = select_topology(
            tiny_app,
            routing="MP",
            objective="hops",
            constraints=Constraints(max_flow_hops=2),
            config=MapperConfig(converge=True, max_rounds=4),
        )
        assert selection.best is not None
        feasible = {n.split("-")[0] for n in selection.feasible}
        assert "clos" not in feasible
        assert "butterfly" in feasible  # uniform 2-hop network

    def test_relaxed_preserves_qos_bound(self):
        c = Constraints(max_flow_hops=3).relaxed()
        assert c.max_flow_hops == 3
