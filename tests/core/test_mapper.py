"""The general mapping algorithm (Figure 5)."""

import pytest

from repro.core.constraints import Constraints
from repro.core.evaluate import evaluate_mapping
from repro.core.greedy import initial_greedy_mapping
from repro.core.mapper import MapperConfig, map_onto
from repro.errors import MappingInfeasibleError, UnsupportedRoutingError
from repro.routing.library import make_routing
from repro.topology.library import make_topology

FAST = MapperConfig(converge=False, swap_rounds=1)


class TestMapOnto:
    def test_returns_valid_assignment(self, tiny_app):
        topo = make_topology("mesh", 4)
        ev = map_onto(tiny_app, topo, routing="MP", objective="hops",
                      config=FAST)
        assert set(ev.assignment) == {0, 1, 2, 3}
        assert len(set(ev.assignment.values())) == 4

    def test_swap_never_worse_than_greedy(self, vopd_app):
        topo = make_topology("mesh", 12)
        greedy = initial_greedy_mapping(vopd_app, topo)
        greedy_ev = evaluate_mapping(
            vopd_app, topo, greedy, make_routing("MP"), Constraints()
        )
        best = map_onto(vopd_app, topo, routing="MP", objective="hops",
                        config=FAST)
        assert best.avg_hops <= greedy_ev.avg_hops + 1e-9

    def test_converge_never_worse_than_single_pass(self, vopd_app):
        topo = make_topology("torus", 12)
        single = map_onto(vopd_app, topo, routing="MP", objective="hops",
                          config=FAST)
        multi = map_onto(
            vopd_app, topo, routing="MP", objective="hops",
            config=MapperConfig(converge=True, max_rounds=6),
        )
        assert multi.sort_key() <= single.sort_key()

    def test_deterministic(self, tiny_app):
        topo = make_topology("mesh", 4)
        e1 = map_onto(tiny_app, topo, config=FAST)
        e2 = map_onto(tiny_app, topo, config=FAST)
        assert e1.assignment == e2.assignment
        assert e1.cost == e2.cost

    def test_final_evaluation_has_floorplan(self, tiny_app):
        topo = make_topology("mesh", 4)
        ev = map_onto(tiny_app, topo, objective="hops", config=FAST)
        assert ev.floorplan is not None
        assert ev.area_mm2 is not None

    def test_collector_receives_all_evaluations(self, tiny_app):
        topo = make_topology("mesh", 4)
        collected = []
        map_onto(tiny_app, topo, config=FAST, collector=collected)
        # greedy + all pairwise swaps (C(4,2) = 6) at minimum
        assert len(collected) >= 7

    def test_too_many_cores_raises(self, vopd_app):
        topo = make_topology("mesh", 6)
        with pytest.raises(MappingInfeasibleError):
            map_onto(vopd_app, topo, config=FAST)

    def test_unsupported_routing_raises(self, tiny_app):
        topo = make_topology("clos", 4)
        with pytest.raises(UnsupportedRoutingError):
            map_onto(tiny_app, topo, routing="DO", config=FAST)

    def test_power_objective_reports_power_cost(self, tiny_app):
        topo = make_topology("mesh", 4)
        ev = map_onto(tiny_app, topo, objective="power", config=FAST)
        assert ev.cost == pytest.approx(ev.power_mw)

    def test_area_objective_reports_area_cost(self, tiny_app):
        topo = make_topology("mesh", 4)
        ev = map_onto(tiny_app, topo, objective="area", config=FAST)
        assert ev.cost == pytest.approx(ev.area_mm2)

    def test_bandwidth_objective_minimizes_max_load(self, tiny_app):
        topo = make_topology("mesh", 4)
        ev = map_onto(
            tiny_app, topo, objective="bandwidth",
            constraints=Constraints().relaxed(), config=FAST,
        )
        # Cost = max load + subordinate RMS tiebreak (< 0.1% of base).
        assert ev.max_link_load <= ev.cost <= 1.001 * ev.max_link_load

    def test_free_slot_swaps_are_explored(self, tiny_app):
        """Hypercube for 4 cores has 4 slots; mesh for 4 has exactly 4 —
        use a 6-slot mesh so moves into empty slots are possible."""
        topo = make_topology("mesh", 6)
        collected = []
        map_onto(tiny_app, topo, config=FAST, collector=collected)
        used_slot_sets = {tuple(sorted(ev.assignment.values()))
                          for ev in collected}
        assert len(used_slot_sets) > 1  # some candidate used other slots

    def test_infeasible_everywhere_is_reported_not_raised(self, mpeg4_app):
        topo = make_topology("butterfly", 12)
        ev = map_onto(mpeg4_app, topo, routing="SM", objective="hops",
                      config=MapperConfig(converge=True, max_rounds=3))
        assert not ev.feasible
        assert ev.max_link_load >= 910.0  # the unsplittable SDRAM flow
