"""Simulated annealing / random-search optimizers."""

import pytest

from repro.core.annealing import (
    AnnealingConfig,
    random_search_map,
    simulated_annealing_map,
)
from repro.core.constraints import Constraints
from repro.core.evaluate import evaluate_mapping
from repro.core.greedy import initial_greedy_mapping
from repro.routing.library import make_routing
from repro.topology.library import make_topology

SMALL = AnnealingConfig(iterations=200, seed=1)


class TestAnnealingConfig:
    def test_bad_iterations(self):
        with pytest.raises(ValueError):
            AnnealingConfig(iterations=0)

    def test_bad_cooling(self):
        with pytest.raises(ValueError):
            AnnealingConfig(cooling=1.5)


class TestSimulatedAnnealing:
    def test_returns_valid_feasible_mapping(self, tiny_app):
        topo = make_topology("mesh", 6)
        ev = simulated_annealing_map(tiny_app, topo, config=SMALL)
        assert ev.feasible
        assert set(ev.assignment) == {0, 1, 2, 3}
        assert len(set(ev.assignment.values())) == 4
        assert ev.floorplan is not None  # final authoritative evaluation

    def test_never_worse_than_greedy(self, tiny_app):
        topo = make_topology("mesh", 6)
        greedy = evaluate_mapping(
            tiny_app, topo, initial_greedy_mapping(tiny_app, topo),
            make_routing("MP"), Constraints(),
        )
        ev = simulated_annealing_map(tiny_app, topo, config=SMALL)
        assert ev.avg_hops <= greedy.avg_hops + 1e-9

    def test_deterministic_given_seed(self, tiny_app):
        topo = make_topology("mesh", 6)
        e1 = simulated_annealing_map(tiny_app, topo, config=SMALL)
        e2 = simulated_annealing_map(tiny_app, topo, config=SMALL)
        assert e1.assignment == e2.assignment

    def test_seed_changes_trajectory(self, tiny_app):
        topo = make_topology("mesh", 6)
        runs = {
            seed: simulated_annealing_map(
                tiny_app, topo,
                config=AnnealingConfig(iterations=120, seed=seed),
            ).cost
            for seed in (1, 2)
        }
        # Costs may tie (small space); the call itself must succeed for
        # distinct seeds and stay optimal-or-equal.
        assert all(c <= 3.0 for c in runs.values())


class TestRandomSearch:
    def test_returns_valid_mapping(self, tiny_app):
        topo = make_topology("mesh", 6)
        ev = random_search_map(tiny_app, topo, iterations=100, seed=2)
        assert set(ev.assignment) == {0, 1, 2, 3}
        assert len(set(ev.assignment.values())) == 4

    def test_more_iterations_never_worse(self, tiny_app):
        topo = make_topology("mesh", 6)
        few = random_search_map(tiny_app, topo, iterations=10, seed=3)
        many = random_search_map(tiny_app, topo, iterations=200, seed=3)
        assert many.sort_key() <= few.sort_key()
