"""Single-mapping evaluation (Figure 5 steps 2-8)."""

import pytest

from repro.core.constraints import Constraints
from repro.core.evaluate import evaluate_mapping, nominal_pitch_mm
from repro.core.greedy import initial_greedy_mapping
from repro.errors import MappingInfeasibleError
from repro.routing.library import make_routing
from repro.topology.library import make_topology


@pytest.fixture
def mesh_eval(vopd_app):
    topo = make_topology("mesh", 12)
    assignment = initial_greedy_mapping(vopd_app, topo)
    return evaluate_mapping(
        vopd_app, topo, assignment, make_routing("MP"), Constraints()
    )


class TestEvaluate:
    def test_metrics_populated(self, mesh_eval):
        assert mesh_eval.avg_hops >= 2.0
        assert mesh_eval.max_link_load > 0
        assert mesh_eval.area_mm2 is not None and mesh_eval.area_mm2 > 0
        assert mesh_eval.power_mw is not None and mesh_eval.power_mw > 0
        assert mesh_eval.floorplan is not None
        assert mesh_eval.resources is not None

    def test_power_breakdown_sums(self, mesh_eval):
        b = mesh_eval.power
        assert b.total_mw == pytest.approx(
            b.switch_dynamic + b.link_dynamic + b.clock + b.leakage
        )
        assert b.switch_dynamic > b.link_dynamic  # paper Section 6.1

    def test_summary_row_keys(self, mesh_eval):
        row = mesh_eval.summary_row()
        for key in ("topology", "routing", "feasible", "avg_hops",
                    "area_mm2", "power_mw", "switches", "links"):
            assert key in row

    def test_fast_mode_skips_floorplan(self, vopd_app):
        topo = make_topology("mesh", 12)
        assignment = initial_greedy_mapping(vopd_app, topo)
        ev = evaluate_mapping(
            vopd_app, topo, assignment, make_routing("MP"), Constraints(),
            with_floorplan=False,
        )
        assert ev.floorplan is None
        assert ev.area_mm2 is None
        assert ev.power_mw is not None  # nominal-length estimate

    def test_incomplete_assignment_rejected(self, vopd_app):
        topo = make_topology("mesh", 12)
        with pytest.raises(MappingInfeasibleError):
            evaluate_mapping(
                vopd_app, topo, {0: 0}, make_routing("MP"), Constraints()
            )

    def test_duplicate_slot_rejected(self, vopd_app):
        topo = make_topology("mesh", 12)
        assignment = {i: 0 for i in range(12)}
        with pytest.raises(MappingInfeasibleError):
            evaluate_mapping(
                vopd_app, topo, assignment, make_routing("MP"), Constraints()
            )

    def test_slot_out_of_range_rejected(self, vopd_app):
        topo = make_topology("mesh", 12)
        assignment = {i: i for i in range(12)}
        assignment[0] = 99
        with pytest.raises(MappingInfeasibleError):
            evaluate_mapping(
                vopd_app, topo, assignment, make_routing("MP"), Constraints()
            )

    def test_sort_key_prefers_feasible(self, mesh_eval):
        key = mesh_eval.sort_key()
        assert key[0] == (0 if mesh_eval.feasible else 1)

    def test_nominal_pitch(self, vopd_app):
        pitch = nominal_pitch_mm(vopd_app)
        assert 1.0 < pitch < 3.0

    def test_tight_capacity_flags_infeasible(self, vopd_app):
        topo = make_topology("mesh", 12)
        assignment = initial_greedy_mapping(vopd_app, topo)
        ev = evaluate_mapping(
            vopd_app, topo, assignment, make_routing("MP"),
            Constraints(link_capacity_mb_s=100.0),
        )
        assert not ev.bandwidth_feasible
        assert ev.overflow_mb_s > 0
