"""Selection over the extended topology library (octagon/star/ring)."""

import pytest

from repro.core.mapper import MapperConfig
from repro.core.selector import select_topology
from repro.topology.library import extended_library

FAST = MapperConfig(converge=False, swap_rounds=1)


class TestExtendedSelection:
    def test_star_dominates_pure_hop_objective(self, tiny_app):
        """A single-hub star is 1 hop for every pair — with no power or
        bandwidth pressure it wins raw delay. (This is why the paper's
        realistic objectives matter.)"""
        selection = select_topology(
            tiny_app,
            topologies=extended_library(tiny_app.num_cores),
            routing="MP",
            objective="hops",
            config=FAST,
        )
        assert selection.best_name.startswith("star")
        assert selection.best.avg_hops == pytest.approx(1.0)

    def test_star_hub_bandwidth_is_constrained(self, tiny_app):
        """Star terminal links ARE its network links: a hot hub port
        must count against capacity."""
        from repro.core.constraints import Constraints

        selection = select_topology(
            tiny_app,
            topologies=extended_library(tiny_app.num_cores),
            routing="MP",
            objective="hops",
            constraints=Constraints(link_capacity_mb_s=150.0),
            config=FAST,
        )
        rows = {r["topology"]: r for r in selection.table()}
        star_row = next(v for k, v in rows.items() if k.startswith("star"))
        assert not star_row["feasible"]  # 200 MB/s flow exceeds 150

    def test_power_objective_rejects_star_at_scale(self):
        """The hub crossbar grows quadratically; for a 12-core app the
        star must not be the power winner."""
        from repro.apps import vopd

        app = vopd()
        selection = select_topology(
            app,
            topologies=extended_library(app.num_cores),
            routing="MP",
            objective="power",
            config=FAST,
        )
        assert selection.best is not None
        assert not selection.best_name.startswith("star")

    def test_octagon_included_only_when_it_fits(self, tiny_app):
        names_small = {
            t.name for t in extended_library(tiny_app.num_cores)
        }
        assert any(n.startswith("octagon") for n in names_small)
