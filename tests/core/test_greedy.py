"""Initial greedy mapping (Figure 5, step 1)."""

import pytest

from repro.core.coregraph import CoreGraph
from repro.core.greedy import initial_greedy_mapping
from repro.errors import MappingInfeasibleError
from repro.topology.library import make_topology


class TestGreedy:
    def test_assignment_is_injective_and_complete(self, vopd_app):
        for name in ("mesh", "torus", "hypercube", "clos", "butterfly"):
            topo = make_topology(name, vopd_app.num_cores)
            assignment = initial_greedy_mapping(vopd_app, topo)
            assert set(assignment) == set(range(vopd_app.num_cores))
            slots = list(assignment.values())
            assert len(set(slots)) == len(slots)
            assert all(0 <= s < topo.num_slots for s in slots)

    def test_too_many_cores_rejected(self):
        g = CoreGraph("big")
        for i in range(10):
            g.add_core(f"c{i}")
        g.add_flow(0, 1, 10.0)
        topo = make_topology("mesh", 6)  # 2x3 = 6 slots
        with pytest.raises(MappingInfeasibleError):
            initial_greedy_mapping(g, topo)

    def test_heaviest_core_gets_best_connected_slot(self, mpeg4_app):
        """SDRAM (max traffic) must land on a max-degree mesh switch."""
        topo = make_topology("mesh", 12)
        assignment = initial_greedy_mapping(mpeg4_app, topo)
        sdram_slot = assignment[mpeg4_app.core_index("sdram")]
        row, col = topo.slot_cell(sdram_slot)
        # Interior cells of a 3x4 mesh: row 1, columns 1..2.
        assert row == 1 and col in (1, 2)

    def test_deterministic(self, vopd_app):
        topo = make_topology("mesh", 12)
        a1 = initial_greedy_mapping(vopd_app, topo)
        a2 = initial_greedy_mapping(vopd_app, topo)
        assert a1 == a2

    def test_communicating_pairs_are_near(self, vopd_app):
        """Greedy should place heavy partners within 2 network hops."""
        topo = make_topology("mesh", 12)
        assignment = initial_greedy_mapping(vopd_app, topo)
        heavy = [
            (s, d)
            for (s, d), bw in vopd_app.flows().items()
            if bw >= 300.0
        ]
        for s, d in heavy:
            dist = topo.hop_distance(assignment[s], assignment[d])
            assert dist <= 4
