"""Objective instances (incl. weighted) through the selector."""

from repro.core.mapper import MapperConfig
from repro.core.objectives import WeightedObjective
from repro.core.selector import select_topology

FAST = MapperConfig(converge=False, swap_rounds=1)


class TestWeightedSelection:
    def test_weighted_objective_instance_accepted(self, tiny_app):
        objective = WeightedObjective(
            hops=0.5, power=0.5, hops_ref=3.0, power_ref=300.0
        )
        selection = select_topology(
            tiny_app, routing="MP", objective=objective, config=FAST
        )
        assert selection.objective_name == "weighted"
        assert selection.best is not None
        for ev in selection.feasible.values():
            assert ev.cost > 0

    def test_weighted_cost_ordering_consistent(self, tiny_app):
        objective = WeightedObjective(
            hops=1.0, area=1.0, power=1.0,
            hops_ref=3.0, area_ref=30.0, power_ref=300.0,
        )
        selection = select_topology(
            tiny_app, routing="MP", objective=objective, config=FAST
        )
        best = selection.best
        for ev in selection.feasible.values():
            assert best.cost <= ev.cost + 1e-9

    def test_pure_hops_weighting_matches_hops_objective(self, tiny_app):
        weighted = select_topology(
            tiny_app,
            routing="MP",
            objective=WeightedObjective(hops=1.0, hops_ref=1.0),
            config=FAST,
        )
        plain = select_topology(
            tiny_app, routing="MP", objective="hops", config=FAST
        )
        assert weighted.best_name == plain.best_name
