"""Constraints and objectives."""

import math

import pytest

from repro.core.constraints import (
    Constraints,
    bandwidth_feasible,
    bandwidth_overflow,
)
from repro.core.coregraph import CoreGraph
from repro.core.objectives import (
    WeightedObjective,
    make_objective,
)
from repro.errors import ReproError
from repro.routing.library import make_routing
from repro.topology.library import make_topology


def route_two_flows(value: float):
    g = CoreGraph("two")
    for i in range(4):
        g.add_core(f"c{i}")
    g.add_flow("c0", "c1", value)
    topo = make_topology("mesh", 4)
    result = make_routing("MP").route_all(
        topo, {i: i for i in range(4)}, g.commodities()
    )
    return topo, result


class TestConstraints:
    def test_default_capacity_is_paper_value(self):
        assert Constraints().link_capacity_mb_s == 500.0

    def test_bandwidth_feasible_under_capacity(self):
        topo, result = route_two_flows(400.0)
        ok, load = bandwidth_feasible(result, topo, Constraints())
        assert ok and load == pytest.approx(400.0)

    def test_bandwidth_infeasible_over_capacity(self):
        topo, result = route_two_flows(600.0)
        ok, load = bandwidth_feasible(result, topo, Constraints())
        assert not ok and load == pytest.approx(600.0)

    def test_overflow_zero_when_feasible(self):
        topo, result = route_two_flows(400.0)
        assert bandwidth_overflow(result, topo, Constraints()) == 0.0

    def test_overflow_positive_when_infeasible(self):
        topo, result = route_two_flows(700.0)
        over = bandwidth_overflow(result, topo, Constraints())
        assert over == pytest.approx(200.0)  # one link 200 over capacity

    def test_relaxed_lifts_capacity(self):
        relaxed = Constraints().relaxed()
        assert math.isinf(relaxed.link_capacity_mb_s)
        topo, result = route_two_flows(10000.0)
        ok, _ = bandwidth_feasible(result, topo, relaxed)
        assert ok

    def test_core_link_capacity_optional(self):
        topo, result = route_two_flows(400.0)
        tight = Constraints(core_link_capacity_mb_s=100.0)
        ok, load = bandwidth_feasible(result, topo, tight)
        assert not ok
        assert load == pytest.approx(400.0)


class TestObjectives:
    def test_make_objective_names(self):
        for name in ("hops", "latency", "area", "power", "bandwidth"):
            obj = make_objective(name)
            assert obj.cost is not None

    def test_unknown_objective(self):
        with pytest.raises(ReproError):
            make_objective("beauty")

    def test_needs_floorplan_flags(self):
        assert not make_objective("hops").needs_floorplan
        assert make_objective("area").needs_floorplan
        assert make_objective("power").needs_floorplan
        assert not make_objective("bandwidth").needs_floorplan

    def test_weighted_requires_positive_weight(self):
        with pytest.raises(ReproError):
            WeightedObjective()
        with pytest.raises(ReproError):
            WeightedObjective(hops=-1.0, power=2.0)

    def test_weighted_combination(self):
        class Stub:
            avg_hops = 2.0
            area_mm2 = 50.0
            power_mw = 400.0

        obj = WeightedObjective(
            hops=0.5, power=0.5, hops_ref=2.0, power_ref=400.0
        )
        assert obj.cost(Stub()) == pytest.approx(1.0)

    def test_weighted_floorplan_flag(self):
        assert WeightedObjective(hops=1.0).needs_floorplan is False
        assert WeightedObjective(hops=1.0, area=0.1).needs_floorplan is True
