"""Phase-2 topology selection."""

import pytest

from repro.core.constraints import Constraints
from repro.core.mapper import MapperConfig
from repro.core.selector import select_topology
from repro.errors import ReproError
from repro.topology.library import make_topology

FAST = MapperConfig(converge=False, swap_rounds=1)


class TestSelectTopology:
    def test_default_library_is_standard_five(self, tiny_app):
        selection = select_topology(tiny_app, routing="MP", config=FAST)
        assert len(selection.evaluations) + len(selection.errors) == 5

    def test_best_is_feasible_minimum(self, tiny_app):
        selection = select_topology(tiny_app, routing="MP", config=FAST)
        best = selection.best
        assert best is not None and best.feasible
        for ev in selection.feasible.values():
            assert best.cost <= ev.cost + 1e-9

    def test_do_on_clos_lands_in_errors(self, tiny_app):
        selection = select_topology(tiny_app, routing="DO", config=FAST)
        assert any("clos" in name for name in selection.errors)

    def test_table_contains_all_topologies(self, tiny_app):
        selection = select_topology(tiny_app, routing="MP", config=FAST)
        names = {row["topology"] for row in selection.table()}
        assert len(names) == 5

    def test_format_table_is_printable(self, tiny_app):
        selection = select_topology(tiny_app, routing="MP", config=FAST)
        text = selection.format_table()
        assert "topology" in text and "avg hops" in text
        assert selection.best_name in text

    def test_invalid_objective_rejected_early(self, tiny_app):
        with pytest.raises(ReproError):
            select_topology(tiny_app, objective="beauty", config=FAST)

    def test_explicit_topology_list(self, tiny_app):
        topos = [make_topology("mesh", 4), make_topology("star", 4)]
        selection = select_topology(tiny_app, topologies=topos, config=FAST)
        assert set(selection.evaluations) == {"mesh-2x2", "star-4"}

    def test_impossible_capacity_yields_no_best(self, tiny_app):
        selection = select_topology(
            tiny_app, routing="MP",
            constraints=Constraints(link_capacity_mb_s=1.0), config=FAST,
        )
        assert selection.best is None
        assert selection.best_name is None
        rows = selection.table()
        assert all(not row["feasible"] for row in rows)
