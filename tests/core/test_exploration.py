"""Design-space exploration (Section 6.3)."""

from repro.core.exploration import (
    ParetoPoint,
    area_power_exploration,
    minimum_bandwidth_per_routing,
    pareto_front,
)
from repro.core.mapper import MapperConfig
from repro.topology.library import make_topology

FAST = MapperConfig(converge=False, swap_rounds=1)


def pt(area: float, power: float) -> ParetoPoint:
    return ParetoPoint(
        area_mm2=area, power_mw=power, avg_hops=2.0, assignment=()
    )


class TestParetoFront:
    def test_single_point(self):
        front = pareto_front([pt(1.0, 1.0)])
        assert len(front) == 1

    def test_dominated_points_removed(self):
        points = [pt(1.0, 5.0), pt(2.0, 6.0), pt(3.0, 1.0)]
        front = pareto_front(points)
        assert [(p.area_mm2, p.power_mw) for p in front] == [
            (1.0, 5.0), (3.0, 1.0),
        ]

    def test_front_is_sorted_and_strictly_improving(self):
        points = [pt(float(a), float(10 - a)) for a in range(1, 10)]
        points += [pt(5.0, 9.0), pt(2.0, 9.5)]
        front = pareto_front(points)
        areas = [p.area_mm2 for p in front]
        powers = [p.power_mw for p in front]
        assert areas == sorted(areas)
        assert powers == sorted(powers, reverse=True)

    def test_dominates(self):
        assert pt(1.0, 1.0).dominates(pt(2.0, 2.0))
        assert not pt(1.0, 3.0).dominates(pt(2.0, 2.0))
        assert not pt(1.0, 1.0).dominates(pt(1.0, 1.0))

    def test_dominates_tie_on_one_axis(self):
        # Equal area, strictly better power: dominates (and not vice versa).
        assert pt(1.0, 1.0).dominates(pt(1.0, 2.0))
        assert not pt(1.0, 2.0).dominates(pt(1.0, 1.0))
        # Equal power, strictly better area: dominates.
        assert pt(1.0, 2.0).dominates(pt(3.0, 2.0))
        assert not pt(3.0, 2.0).dominates(pt(1.0, 2.0))

    def test_dominates_is_antisymmetric_on_equal_points(self):
        a, b = pt(2.5, 4.0), pt(2.5, 4.0)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_front_keeps_exactly_one_of_equal_points(self):
        front = pareto_front([pt(1.0, 1.0), pt(1.0, 1.0), pt(1.0, 1.0)])
        assert [(p.area_mm2, p.power_mw) for p in front] == [(1.0, 1.0)]

    def test_front_with_tie_on_area_axis(self):
        # Same area, different power: only the lower-power one survives.
        front = pareto_front([pt(1.0, 5.0), pt(1.0, 4.0), pt(1.0, 6.0)])
        assert [(p.area_mm2, p.power_mw) for p in front] == [(1.0, 4.0)]

    def test_front_with_tie_on_power_axis(self):
        # Same power, different area: only the smaller-area one survives.
        front = pareto_front([pt(3.0, 2.0), pt(1.0, 2.0), pt(2.0, 2.0)])
        assert [(p.area_mm2, p.power_mw) for p in front] == [(1.0, 2.0)]

    def test_empty_front(self):
        assert pareto_front([]) == []

    def test_no_front_point_dominated(self):
        points = [pt(float(i % 7 + 1), float((i * 3) % 11 + 1))
                  for i in range(30)]
        front = pareto_front(points)
        for f in front:
            assert not any(p.dominates(f) for p in points)


class TestBandwidthSweep:
    def test_sweep_ordering(self, tiny_app):
        topo = make_topology("mesh", 4)
        sweep = minimum_bandwidth_per_routing(tiny_app, topo, config=FAST)
        assert set(sweep) == {"DO", "MP", "SM", "SA"}
        assert sweep["DO"] >= sweep["MP"] - 1e-6
        assert sweep["MP"] >= sweep["SM"] - 1e-6
        assert sweep["SM"] >= sweep["SA"] - 1e-6

    def test_unsupported_marked_none(self, tiny_app):
        topo = make_topology("clos", 4)
        sweep = minimum_bandwidth_per_routing(
            tiny_app, topo, codes=("DO", "MP"), config=FAST
        )
        assert sweep["DO"] is None
        assert sweep["MP"] is not None


class TestAreaPowerExploration:
    def test_returns_points_and_front(self, tiny_app):
        topo = make_topology("mesh", 4)
        points, front = area_power_exploration(
            tiny_app, topo, routing="MP", config=FAST
        )
        assert points and front
        assert set(front) <= set(points)

    def test_front_members_not_dominated(self, tiny_app):
        topo = make_topology("mesh", 4)
        points, front = area_power_exploration(
            tiny_app, topo, routing="MP", config=FAST
        )
        for f in front:
            assert not any(p.dominates(f) for p in points)
