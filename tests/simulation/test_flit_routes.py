"""Flit/packet model and simulator routing tables."""

import pytest

from repro.errors import UnsupportedRoutingError
from repro.simulation.flit import Packet
from repro.simulation.routes import RouteTable
from repro.topology.base import switch, term
from repro.topology.library import make_topology


class TestPacket:
    def test_flit_roles(self):
        p = Packet(pid=0, src=0, dst=1, length=4, created=0)
        flits = p.flits()
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail and not flits[-1].is_head
        assert all(
            not f.is_head and not f.is_tail for f in flits[1:-1]
        )

    def test_single_flit_packet_is_head_and_tail(self):
        p = Packet(pid=0, src=0, dst=1, length=1, created=0)
        (f,) = p.flits()
        assert f.is_head and f.is_tail

    def test_latency(self):
        p = Packet(pid=0, src=0, dst=1, length=2, created=10)
        assert p.latency is None
        p.ejected = 25
        assert p.latency == 15

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            Packet(pid=0, src=0, dst=1, length=0, created=0)


class TestRouteTable:
    def test_mesh_next_hops_follow_dor(self):
        topo = make_topology("mesh", 9)  # 3x3
        table = RouteTable(topo)
        # From switch 0 toward slot 2 (same row): go east to switch 1.
        assert table.candidates(switch(0), 2) == (switch(1),)

    def test_candidates_end_at_destination_terminal(self):
        topo = make_topology("mesh", 9)
        table = RouteTable(topo)
        assert table.candidates(switch(4), 4) == (term(4),)

    def test_clos_ingress_has_middle_diversity(self):
        topo = make_topology("clos", 8)
        table = RouteTable(topo)
        cands = table.candidates(switch(("in", 0)), 7)
        assert len(cands) == topo.m

    def test_butterfly_single_candidate_everywhere(self):
        topo = make_topology("butterfly", 8)
        table = RouteTable(topo)
        for node in topo.switches:
            for dst in range(8):
                try:
                    cands = table.candidates(node, dst)
                except UnsupportedRoutingError:
                    continue  # switch not on any path to dst
                assert len(cands) == 1

    def test_next_hop_deterministic_for_single_candidate(self):
        import random

        topo = make_topology("mesh", 9)
        table = RouteTable(topo)
        rng = random.Random(0)
        hops = {table.next_hop(switch(0), 8, rng) for _ in range(10)}
        assert len(hops) == 1

    def test_unknown_route_raises(self):
        topo = make_topology("mesh", 9)
        table = RouteTable(topo, slots=[0, 1, 2])
        with pytest.raises(UnsupportedRoutingError):
            table.candidates(switch(0), 8)

    def test_walking_candidates_reaches_destination(self):
        import random

        topo = make_topology("clos", 12)
        table = RouteTable(topo)
        rng = random.Random(1)
        for dst in (3, 7, 11):
            node = topo.switch_of(0)
            for _ in range(6):
                node = table.next_hop(node, dst, rng)
                if node == term(dst):
                    break
            assert node == term(dst)
