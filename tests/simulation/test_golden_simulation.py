"""Golden regression tests pinning simulator kernel bit-identity.

The integer-indexed kernel rewrite promised *bit-identical* behaviour:
same per-packet latencies, same delivered fractions, same per-switch
load histograms. These goldens pin full :class:`SimReport` statistics
for the four paper topologies under application-trace and uniform
synthetic traffic, so any kernel change that shifts a single flit fails
loudly here.

Regenerate deliberately with::

    PYTHONPATH=src python -m pytest tests/simulation/test_golden_simulation.py \
        --update-goldens

and review the diff of ``tests/golden/simulation.json`` like any other
code change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.apps import vopd
from repro.core.greedy import initial_greedy_mapping
from repro.simulation.network import Network, SimConfig
from repro.simulation.stats import run_measurement
from repro.simulation.traffic import SyntheticTraffic, build_traffic
from repro.topology.library import make_topology

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "simulation.json"

#: The pinned grid: the four paper topologies under the application
#: trace (vopd, greedily mapped) and uniform synthetic traffic.
GRID = [
    ("mesh", 12, "app"),
    ("mesh", 12, "uniform"),
    ("torus", 12, "app"),
    ("torus", 12, "uniform"),
    ("butterfly", 16, "app"),
    ("butterfly", 16, "uniform"),
    ("clos", 12, "app"),
    ("clos", 12, "uniform"),
]

RATE = 0.12
SEED = 3


def _measure(topo_name: str, cores: int, pattern: str) -> dict:
    topology = make_topology(topo_name, cores)
    if pattern == "app":
        app = vopd()
        assignment = initial_greedy_mapping(app, topology)
        slots = sorted(assignment.values())
    else:
        app = None
        assignment = None
        slots = None
    traffic = build_traffic(
        pattern, RATE, seed=SEED, core_graph=app, assignment=assignment
    )
    report = run_measurement(
        topology,
        traffic,
        config=SimConfig(seed=5),
        warmup=400,
        measure=1600,
        drain=1200,
        active_slots=slots,
        offered_rate=RATE,
    )
    return {
        "cycles": report.cycles,
        "measured_packets": report.measured_packets,
        "delivered_fraction": report.delivered_fraction,
        "avg_latency": report.avg_latency,
        "p95_latency": report.p95_latency,
        "min_latency": report.min_latency,
        "throughput_flits_per_cycle": report.throughput_flits_per_cycle,
        "switch_loads": [list(pair) for pair in report.switch_loads],
    }


@pytest.fixture(scope="module")
def goldens() -> dict:
    if not GOLDEN_PATH.exists():
        return {}
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.mark.parametrize(
    ("topo_name", "cores", "pattern"),
    GRID,
    ids=[f"{t}-{p}" for t, _, p in GRID],
)
def test_simulation_matches_golden(
    request, goldens, topo_name, cores, pattern
):
    key = f"{topo_name}/{pattern}"
    outcome = _measure(topo_name, cores, pattern)
    if request.config.getoption("--update-goldens"):
        stored = (
            json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
            if GOLDEN_PATH.exists()
            else {}
        )
        stored[key] = outcome
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(stored, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return
    assert key in goldens, (
        f"no golden for {key}; run pytest with --update-goldens and "
        f"commit {GOLDEN_PATH}"
    )
    # Exact equality, floats included: the kernel must be bit-identical,
    # not merely statistically similar (JSON round-trips floats exactly).
    assert outcome == goldens[key], (
        f"simulation outcome for {key} drifted from the committed golden "
        f"(a kernel change moved at least one flit; rerun with "
        f"--update-goldens only if the change is intended)"
    )


class TestAdvanceIdentity:
    """``run(n)`` (the fused loop) and n × ``step()`` must agree."""

    def _signature(self, net):
        return [
            (p.pid, p.src, p.dst, p.created, p.ejected) for p in net.packets
        ]

    def test_run_equals_repeated_step(self):
        def drive(stepwise: bool):
            topology = make_topology("mesh", 9)
            net = Network(topology, SimConfig(seed=3))
            traffic = SyntheticTraffic("uniform", 0.2, seed=4)
            if stepwise:
                for _ in range(500):
                    net.step(traffic)
            else:
                net.run(500, traffic)
            net.drain()
            return self._signature(net)

        assert drive(True) == drive(False)

    def test_interleaved_run_segments_match_single_run(self):
        def drive(segments):
            topology = make_topology("torus", 9)
            net = Network(topology, SimConfig(seed=6))
            traffic = SyntheticTraffic("transpose", 0.25, seed=7)
            for cycles in segments:
                net.run(cycles, traffic)
            net.drain()
            return self._signature(net)

        assert drive([700]) == drive([1, 299, 150, 250])
