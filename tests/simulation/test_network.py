"""Cycle-accurate simulator invariants."""

import pytest

from repro.errors import SimulationError
from repro.simulation.network import Network, SimConfig
from repro.simulation.stats import run_measurement
from repro.simulation.traffic import SyntheticTraffic, TraceTraffic
from repro.topology.library import make_topology


def low_load_run(topo_name: str, rate: float = 0.08, cycles: int = 1500):
    topo = make_topology(topo_name, 16)
    net = Network(topo, SimConfig(seed=2))
    traffic = SyntheticTraffic("uniform", rate, seed=4)
    net.run(cycles, traffic)
    assert net.drain(), f"{topo_name} failed to drain"
    return net


class TestConservation:
    @pytest.mark.parametrize(
        "topo_name", ["mesh", "torus", "hypercube", "clos", "butterfly"]
    )
    def test_all_packets_delivered_after_drain(self, topo_name):
        net = low_load_run(topo_name)
        assert net.injected_packets == len(net.delivered)
        assert net.in_flight == 0

    def test_flit_conservation(self):
        net = low_load_run("mesh")
        plen = net.config.packet_length_flits
        assert net.ejected_flits == len(net.delivered) * plen


class TestLatency:
    def test_latency_at_least_zero_load_bound(self):
        """Latency >= switch pipeline + link traversal + serialization
        (+1 cycle of injection scheduling)."""
        net = low_load_run("mesh")
        plen = net.config.packet_length_flits
        for p in net.delivered:
            hops = net.topology.hop_distance(p.src, p.dst)
            links = hops + 1
            lower = hops + links + plen
            assert p.latency >= lower

    def test_some_packet_achieves_zero_load_latency(self):
        net = low_load_run("butterfly", rate=0.02)
        plen = net.config.packet_length_flits
        best = min(p.latency for p in net.delivered)
        # butterfly: 2 switch cycles + 3 link cycles + serialization + 1
        assert best == 2 + 3 + plen

    def test_latency_increases_with_load(self):
        topo = make_topology("mesh", 16)
        lo = run_measurement(
            topo, SyntheticTraffic("bit_reverse", 0.05, seed=3),
            warmup=400, measure=1500, drain=1500, offered_rate=0.05,
        )
        hi = run_measurement(
            topo, SyntheticTraffic("bit_reverse", 0.35, seed=3),
            warmup=400, measure=1500, drain=1500, offered_rate=0.35,
        )
        assert hi.avg_latency > lo.avg_latency


class TestWormhole:
    def test_no_packet_interleaving_on_links(self):
        """Flits of different packets must not interleave within a VC."""
        topo = make_topology("mesh", 9)
        net = Network(topo, SimConfig(seed=5))
        arrivals = []  # (edge, vc, pid, flit_index)
        original = net._schedule_arrival

        def spy(when, key, flit):
            arrivals.append((key, flit.packet.pid, flit.index))
            original(when, key, flit)

        net._schedule_arrival = spy
        net.run(800, SyntheticTraffic("uniform", 0.2, seed=6))
        net._schedule_arrival = original
        net.drain()
        per_channel: dict = {}
        for key, pid, index in arrivals:
            per_channel.setdefault(key, []).append((pid, index))
        for seq in per_channel.values():
            current = None
            for pid, index in seq:
                if index == 0:
                    current = pid
                else:
                    assert pid == current, "interleaved packet on channel"

    def test_torus_deadlock_free_under_load(self):
        """Dateline VCs: torus at high adversarial load still drains."""
        topo = make_topology("torus", 16)
        net = Network(topo, SimConfig(seed=7))
        net.run(2500, SyntheticTraffic("bit_reverse", 0.45, seed=8))
        assert net.drain(max_cycles=60000)

    def test_ring_deadlock_free_under_load(self):
        topo = make_topology("ring", 8)
        net = Network(topo, SimConfig(seed=9))
        net.run(2500, SyntheticTraffic("tornado", 0.3, seed=10))
        assert net.drain(max_cycles=60000)


class TestApiGuards:
    def test_self_packet_rejected(self):
        net = Network(make_topology("mesh", 4))
        with pytest.raises(SimulationError):
            net.create_packet(0, 0)

    def test_inactive_slot_rejected(self):
        net = Network(make_topology("mesh", 9), active_slots=[0, 1, 2])
        with pytest.raises(SimulationError):
            net.create_packet(5, 0)

    def test_bad_config_rejected(self):
        with pytest.raises(SimulationError):
            SimConfig(packet_length_flits=0)
        with pytest.raises(SimulationError):
            SimConfig(buffer_depth_flits=0)
        with pytest.raises(SimulationError):
            SimConfig(link_latency=0)
        with pytest.raises(SimulationError):
            SimConfig(num_vcs=0)

    def test_deterministic_given_seeds(self):
        def run():
            topo = make_topology("mesh", 9)
            net = Network(topo, SimConfig(seed=3))
            net.run(600, SyntheticTraffic("uniform", 0.15, seed=4))
            net.drain()
            return [(p.pid, p.latency) for p in net.delivered]

        assert run() == run()


class TestTraceTraffic:
    def test_trace_rates_proportional_to_bandwidth(self, dsp_app):
        assignment = {i: i for i in range(6)}
        trace = TraceTraffic(dsp_app, assignment)
        rates = {(s, d): r for s, d, r in trace.flows}
        fft = dsp_app.core_index("fft")
        filt = dsp_app.core_index("filter")
        arm = dsp_app.core_index("arm")
        assert rates[(fft, filt)] == pytest.approx(3 * rates[(arm, fft)])

    def test_trace_drives_simulation(self, dsp_app):
        topo = make_topology("mesh", 6)
        assignment = {i: i for i in range(6)}
        trace = TraceTraffic(dsp_app, assignment, scale=0.3)
        net = Network(topo, SimConfig(seed=11), active_slots=list(range(6)))
        net.run(1500, trace)
        assert net.drain()
        assert net.injected_packets > 0
