"""Traffic patterns and measurement harness."""

import random

import pytest

from repro.errors import SimulationError
from repro.simulation.stats import latency_vs_injection, run_measurement
from repro.simulation.traffic import (
    ADVERSARIAL_PATTERNS,
    PATTERNS,
    SyntheticTraffic,
    adversarial_pattern,
)
from repro.topology.library import make_topology


class TestPatterns:
    # uniform and hotspot draw random destinations; the rest are
    # deterministic permutations.
    @pytest.mark.parametrize(
        "name", sorted(set(PATTERNS) - {"uniform", "hotspot"})
    )
    @pytest.mark.parametrize("n", [8, 16])
    def test_deterministic_patterns_are_permutations(self, name, n):
        fn = PATTERNS[name]
        rng = random.Random(0)
        dests = [fn(i, n, rng) for i in range(n)]
        assert all(0 <= d < n for d in dests)
        assert len(set(dests)) == n  # bijective

    def test_uniform_excludes_self(self):
        rng = random.Random(0)
        for _ in range(200):
            i = rng.randrange(16)
            assert PATTERNS["uniform"](i, 16, rng) != i

    def test_bit_complement_pairs(self):
        rng = random.Random(0)
        assert PATTERNS["bit_complement"](0, 16, rng) == 15
        assert PATTERNS["bit_complement"](5, 16, rng) == 10

    def test_transpose_square(self):
        rng = random.Random(0)
        assert PATTERNS["transpose"](1, 16, rng) == 4
        assert PATTERNS["transpose"](7, 16, rng) == 13

    def test_unknown_pattern_rejected(self):
        with pytest.raises(SimulationError):
            SyntheticTraffic("zigzag", 0.1)

    def test_negative_rate_rejected(self):
        with pytest.raises(SimulationError):
            SyntheticTraffic("uniform", -0.1)

    def test_adversarial_lookup(self):
        for name in ("mesh", "torus", "hypercube", "clos", "butterfly"):
            topo = make_topology(name, 16)
            assert adversarial_pattern(topo) in PATTERNS
        assert adversarial_pattern(make_topology("ring", 8)) == "transpose"

    def test_adversarial_table_covers_standard_library(self):
        assert set(ADVERSARIAL_PATTERNS) == {
            "mesh", "torus", "hypercube", "clos", "butterfly",
        }


class TestMeasurement:
    def test_report_fields(self):
        topo = make_topology("mesh", 9)
        report = run_measurement(
            topo, SyntheticTraffic("uniform", 0.1, seed=2),
            warmup=300, measure=900, drain=900, offered_rate=0.1,
        )
        assert report.measured_packets > 0
        assert 0 < report.avg_latency < 1000
        assert report.min_latency <= report.avg_latency <= report.p95_latency
        assert 0 <= report.delivered_fraction <= 1.0
        assert not report.saturated()

    def test_latency_vs_injection_monotone_shape(self):
        topo = make_topology("mesh", 16)
        reports = latency_vs_injection(
            topo, [0.05, 0.3], pattern="bit_reverse",
            warmup=300, measure=1200, drain=1200,
        )
        assert reports[0].avg_latency < reports[1].avg_latency
        assert reports[0].offered_rate == 0.05

    def test_saturation_detected_on_butterfly(self):
        topo = make_topology("butterfly", 16)
        report = run_measurement(
            topo, SyntheticTraffic("bit_complement", 0.5, seed=3),
            warmup=300, measure=1500, drain=600, offered_rate=0.5,
        )
        assert report.saturated() or report.avg_latency > 100
