"""Simulator behaviour across configurations."""

import pytest

from repro.simulation.network import Network, SimConfig
from repro.simulation.stats import run_measurement
from repro.simulation.traffic import SyntheticTraffic
from repro.topology.base import is_switch
from repro.topology.library import make_topology


def run_and_drain(topo_name, config, rate=0.08, cycles=1000, n=9):
    topo = make_topology(topo_name, n)
    net = Network(topo, config)
    net.run(cycles, SyntheticTraffic("uniform", rate, seed=2))
    assert net.drain(), "network failed to drain"
    return net


class TestPacketLength:
    @pytest.mark.parametrize("plen", [1, 2, 4, 16])
    def test_conservation_across_lengths(self, plen):
        net = run_and_drain("mesh", SimConfig(packet_length_flits=plen, seed=1))
        assert net.injected_packets == len(net.delivered)
        assert net.ejected_flits == plen * len(net.delivered)

    def test_longer_packets_higher_latency(self):
        def avg(plen):
            net = run_and_drain(
                "mesh", SimConfig(packet_length_flits=plen, seed=1)
            )
            lats = [p.latency for p in net.delivered]
            return sum(lats) / len(lats)

        assert avg(16) > avg(2)


class TestLinkLatency:
    def test_longer_links_slow_everything(self):
        def avg(lat):
            net = run_and_drain("mesh", SimConfig(link_latency=lat, seed=1))
            lats = [p.latency for p in net.delivered]
            return sum(lats) / len(lats)

        assert avg(3) > avg(1)

    def test_switch_latency_zero_supported(self):
        net = run_and_drain("mesh", SimConfig(switch_latency=0, seed=1))
        assert net.injected_packets == len(net.delivered)


class TestTopologyCoverage:
    @pytest.mark.parametrize("name", ["star", "ring", "octagon"])
    def test_extension_topologies_simulate(self, name):
        n = 8
        net = run_and_drain(name, SimConfig(seed=3), n=n)
        assert net.injected_packets == len(net.delivered)

    def test_clos_uses_all_middles(self):
        """Adaptive middle choice must spread packets over every middle
        switch (the path diversity Figure 8(b) rewards)."""
        topo = make_topology("clos", 8)
        net = Network(topo, SimConfig(seed=4))
        seen_middles = set()
        original = net._schedule_arrival

        def spy(when, ch, flit):
            edge, _vc = net.chan_key[ch]
            dst = edge[1]
            if is_switch(dst) and dst[1][0] == "mid":
                seen_middles.add(dst)
            original(when, ch, flit)

        net._schedule_arrival = spy
        net.run(1500, SyntheticTraffic("uniform", 0.2, seed=5))
        net._schedule_arrival = original
        net.drain()
        assert len(seen_middles) == topo.m


class TestMeasurementWindows:
    def test_zero_measure_window(self):
        topo = make_topology("mesh", 9)
        report = run_measurement(
            topo, SyntheticTraffic("uniform", 0.1, seed=6),
            warmup=200, measure=0, drain=200,
        )
        assert report.measured_packets == 0
        assert report.delivered_fraction == 1.0

    def test_throughput_tracks_offered_load_below_saturation(self):
        topo = make_topology("torus", 16)
        report = run_measurement(
            topo, SyntheticTraffic("uniform", 0.2, seed=7),
            warmup=400, measure=2000, drain=1500, offered_rate=0.2,
        )
        # 16 nodes x 0.2 flits/cycle = 3.2 flits/cycle network-wide.
        assert report.throughput_flits_per_cycle == pytest.approx(
            3.2, rel=0.15
        )
