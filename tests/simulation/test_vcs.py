"""Virtual-channel and flow-control behaviour."""

from repro.simulation.network import Network, SimConfig
from repro.simulation.traffic import SyntheticTraffic
from repro.topology.library import make_topology


class TestVirtualChannels:
    def test_wrap_crossing_moves_to_vc1(self):
        """Dateline scheme: flits arriving over a wrap link ride VC1."""
        topo = make_topology("torus", 16)
        net = Network(topo, SimConfig(seed=1))
        vc1_arrivals = []
        original = net._schedule_arrival

        def spy(when, ch, flit):
            edge, vc = net.chan_key[ch]
            if edge in net._wrap_edges:
                vc1_arrivals.append(vc)
            original(when, ch, flit)

        net._schedule_arrival = spy
        net.run(1200, SyntheticTraffic("bit_reverse", 0.2, seed=2))
        net._schedule_arrival = original
        net.drain()
        assert vc1_arrivals, "some packets must use wrap links"
        assert all(vc == 1 for vc in vc1_arrivals)

    def test_mesh_never_uses_vc1(self):
        """No wrap links on a mesh: VC1 stays idle."""
        topo = make_topology("mesh", 16)
        net = Network(topo, SimConfig(seed=1))
        net.run(800, SyntheticTraffic("uniform", 0.1, seed=3))
        net.drain()
        for (edge, vc), buf in net.inputs.items():
            if vc == 1:
                assert not buf.queue

    def test_single_vc_config_works_on_mesh(self):
        topo = make_topology("mesh", 9)
        net = Network(topo, SimConfig(seed=1, num_vcs=1))
        net.run(800, SyntheticTraffic("uniform", 0.1, seed=4))
        assert net.drain()
        assert net.injected_packets == len(net.delivered)


class TestCredits:
    def test_credits_never_negative_nor_overflow(self):
        topo = make_topology("mesh", 9)
        config = SimConfig(seed=5)
        net = Network(topo, config)
        traffic = SyntheticTraffic("transpose", 0.3, seed=6)
        for _ in range(600):
            net.step(traffic)
            for (edge, vc), out in net.outputs.items():
                assert out.credits >= 0
                dest_is_switch = edge[1][0] == "sw"
                if dest_is_switch:
                    assert out.credits <= config.buffer_depth_flits
        net.drain()

    def test_buffer_occupancy_bounded(self):
        topo = make_topology("mesh", 9)
        config = SimConfig(seed=7, buffer_depth_flits=4)
        net = Network(topo, config)
        traffic = SyntheticTraffic("bit_reverse", 0.4, seed=8)
        for _ in range(600):
            net.step(traffic)
            for buf in net.inputs.values():
                assert len(buf.queue) <= config.buffer_depth_flits
        # No assertion on drain: the point is bounded buffers under load.


class TestBusySwitchOptimization:
    def test_idle_network_steps_quickly_and_correctly(self):
        topo = make_topology("mesh", 16)
        net = Network(topo, SimConfig(seed=9))
        net.run(200, None)  # no traffic at all
        assert net.cycle == 200
        assert not net._busy_switches

    def test_results_equal_regardless_of_activity_history(self):
        """Warm idle periods must not change later behaviour."""
        def run(idle_prefix):
            topo = make_topology("mesh", 9)
            net = Network(topo, SimConfig(seed=3))
            net.run(idle_prefix, None)
            traffic = SyntheticTraffic("uniform", 0.15, seed=4)
            net.run(600, traffic)
            net.drain()
            return sorted(
                (p.src, p.dst, p.latency) for p in net.delivered
            )

        assert run(0) == run(50)
