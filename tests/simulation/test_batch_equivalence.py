"""Batch fast lane vs the exact kernel: the statistical-equivalence gate.

The batched simulator (:mod:`repro.simulation.batch`) is deliberately
**not** bit-identical to the exact kernel — its random streams are
content-keyed per lane instead of sequential — so its contract is
statistical: same detected saturation per curve, pre-saturation
latency within tolerance, and flit conservation holding *exactly*.
Both lanes are deterministic given the seed set, so every assertion
here is exact-reproducible, never flaky.

Also covered: the determinism contract the ``("bsim", …)`` cache keys
rely on (a point's payload is independent of its batch mates and
order), the engine's per-point cache/journal/resume handling of
:class:`~repro.engine.jobs.BatchSimulationJob` groups, per-lane error
isolation, and the order-stable ``_mean`` the curves are averaged
with.
"""

from __future__ import annotations

import math

import pytest

from repro.engine import ExplorationEngine
from repro.engine.cache import EvaluationCache
from repro.engine.jobs import BatchSimulationJob, SimulationJob
from repro.engine.journal import RunJournal
from repro.errors import SimulationError
from repro.simulation.batch import BatchLane, BatchSimulator, simulate_batch
from repro.simulation.campaign import CampaignConfig, _mean, run_campaign
from repro.topology.library import make_topology

#: Pre-saturation latency agreement between the lanes (the bench gate
#: uses the same bound; measured agreement on these sweeps is <= 13%).
LATENCY_TOLERANCE = 0.20

#: Bench-protocol measurement window, long enough to saturate mpeg4.
PROTOCOL = dict(warmup=200, measure=800, drain=600)

#: Sweep reaching past mpeg4's knee (saturates at 0.3 on these seeds).
RATES = tuple(round(0.05 * i, 2) for i in range(1, 11))
SEEDS = (1, 2)


def _campaign(app, sim_engine, **overrides):
    topology = make_topology("mesh", app.num_cores)
    assignment = {i: i for i in range(app.num_cores)}
    settings = dict(
        rates=RATES, patterns=("app",), seeds=SEEDS,
        sim_engine=sim_engine, **PROTOCOL,
    )
    settings.update(overrides)
    return run_campaign(
        topology,
        core_graph=app,
        assignment=assignment,
        config=CampaignConfig(**settings),
    )


@pytest.fixture(scope="module")
def lanes(mpeg4_app):
    """The exact and batch sweeps of one knee-crossing app campaign."""
    return (
        _campaign(mpeg4_app, "exact"),
        _campaign(mpeg4_app, "batch"),
    )


class TestStatisticalEquivalence:
    def test_same_detected_saturation(self, lanes):
        exact, batch = lanes
        assert exact.saturation_rates() == batch.saturation_rates()
        # The sweep actually crosses the knee — the match is not an
        # empty None == None statement.
        assert exact.curves["app"].saturation_rate is not None

    def test_pre_saturation_latency_within_tolerance(self, lanes):
        exact, batch = lanes
        compared = 0
        for pattern, exact_curve in exact.curves.items():
            batch_curve = batch.curves[pattern]
            sat = exact_curve.saturation_rate
            base = exact_curve.avg_latency[0]
            for i, rate in enumerate(exact_curve.rates):
                exact_lat = exact_curve.avg_latency[i]
                near_knee = (
                    (sat is not None and rate >= 0.8 * sat)
                    or (sat is None
                        and rate >= 0.8 * exact_curve.rates[-1])
                    or exact_curve.delivered[i] < 0.99
                    or batch_curve.delivered[i] < 0.99
                    or not math.isfinite(exact_lat)
                    or exact_lat > 3.0 * base
                )
                if near_knee:
                    continue
                compared += 1
                assert batch_curve.avg_latency[i] == pytest.approx(
                    exact_lat, rel=LATENCY_TOLERANCE
                ), f"{pattern}@{rate:g}"
        assert compared >= 3  # the knee filter left a real comparison

    def test_throughput_and_delivery_agree_pre_knee(self, lanes):
        exact, batch = lanes
        for pattern, exact_curve in exact.curves.items():
            batch_curve = batch.curves[pattern]
            for i, rate in enumerate(exact_curve.rates):
                if exact_curve.delivered[i] < 0.99:
                    break
                assert batch_curve.delivered[i] >= 0.97
                assert batch_curve.throughput[i] == pytest.approx(
                    exact_curve.throughput[i], rel=0.10
                ), f"{pattern}@{rate:g}"


class TestConservation:
    """Every injected flit is ejected or still queued — exactly."""

    def test_flit_conservation_per_lane(self, vopd_app):
        topology = make_topology("mesh", vopd_app.num_cores)
        assignment = tuple(
            (i, i) for i in range(vopd_app.num_cores)
        )
        lanes = [
            BatchLane(
                pattern=pattern, rate=rate, traffic_seed=seed,
                core_graph=vopd_app if pattern == "app" else None,
                assignment=assignment if pattern == "app" else None,
                **PROTOCOL,
            )
            for pattern, rate, seed in (
                ("uniform", 0.1, 1),
                ("uniform", 0.45, 2),   # deep congestion
                ("transpose", 0.3, 1),
                ("app", 0.2, 3),
            )
        ]
        sim = BatchSimulator(topology, lanes)
        sim.run()
        injected = sim.injected_flits
        balance = sim.ejected_flits + sim.in_network_flits()
        assert injected.tolist() == balance.tolist()
        assert int(injected.min()) > 0  # every lane really injected


class TestCompositionIndependence:
    """A point's payload never depends on its batch mates or order."""

    def _point(self, topology, pattern="uniform", rate=0.2, seed=1):
        return SimulationJob(
            topology=topology, pattern=pattern, rate=rate,
            traffic_seed=seed, **PROTOCOL,
        )

    def test_payload_independent_of_batch_mates(self, vopd_app):
        topology = make_topology("mesh", vopd_app.num_cores)
        probe = self._point(topology)
        mates = [
            self._point(topology, "transpose", 0.35, 2),
            self._point(topology, "uniform", 0.05, 3),
            self._point(topology, "hotspot", 0.15, 1),
        ]
        solo = simulate_batch([probe])[0]
        first, *_ = simulate_batch([probe] + mates)
        *_, last = simulate_batch(mates + [probe])
        assert solo == first == last

    def test_group_subsets_reproduce_the_full_group(self, vopd_app):
        topology = make_topology("mesh", vopd_app.num_cores)
        points = tuple(
            self._point(topology, "uniform", rate, seed)
            for rate in (0.1, 0.3)
            for seed in (1, 2)
        )
        group = BatchSimulationJob(points=points)
        full = simulate_batch(group.points)
        for i in range(len(points)):
            (alone,) = simulate_batch(group.subset([i]).points)
            assert alone == full[i]


class TestEngineGroupPath:
    """Per-point cache/journal semantics of BatchSimulationJob groups."""

    def _group(self, vopd_app, rates=(0.1, 0.2, 0.3, 0.4)):
        topology = make_topology("mesh", vopd_app.num_cores)
        return BatchSimulationJob(points=tuple(
            SimulationJob(
                topology=topology, pattern="uniform", rate=rate,
                traffic_seed=1, tag=f"r{rate:g}", **PROTOCOL,
            )
            for rate in rates
        ))

    def test_point_keys_are_namespaced_per_engine_lane(self, vopd_app):
        group = self._group(vopd_app)
        for point, key in zip(group.points, group.point_keys()):
            assert key[0] == "bsim"
            assert key[1:] == point.cache_key()[1:]
            assert point.cache_key()[0] == "sim"

    def test_exact_cache_entries_never_serve_batch_points(self, vopd_app):
        cache = EvaluationCache()
        engine = ExplorationEngine(cache=cache)
        group = self._group(vopd_app)
        engine.run(list(group.points))  # warm the ("sim", …) keys
        warm_misses = cache.stats.misses
        (outcome,) = engine.run([group])
        assert cache.stats.hits == 0
        assert cache.stats.misses == warm_misses + len(group.points)
        assert all(not r.cached for r in outcome.value)

    def test_cache_hits_shrink_the_group(self, vopd_app):
        cache = EvaluationCache()
        engine = ExplorationEngine(cache=cache)
        group = self._group(vopd_app)
        warm = engine.run([group.subset([0, 2])])[0]
        (outcome,) = engine.run([group])
        assert cache.stats.hits == 2
        cached_flags = [r.cached for r in outcome.value]
        assert cached_flags == [True, False, True, False]
        assert outcome.value[0].value == warm.value[0].value
        assert outcome.value[2].value == warm.value[1].value
        # Point tags survive the cache round-trip.
        assert [r.tag for r in outcome.value] == [
            p.tag for p in group.points
        ]
        # A fully warm rerun short-circuits without executing anything.
        (rerun,) = engine.run([group])
        assert rerun.cached
        assert [r.value for r in rerun.value] == [
            r.value for r in outcome.value
        ]

    def test_journal_resume_replays_points_exactly(self, vopd_app, tmp_path):
        group = self._group(vopd_app)
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            engine = ExplorationEngine(journal=journal)
            (original,) = engine.run([group])
        resumed = RunJournal(path, resume=True)
        assert resumed.stats.loaded == len(group.points)
        replay_engine = ExplorationEngine(journal=resumed)
        (replayed,) = replay_engine.run([group])
        # Every point was served from the journal, none executed: the
        # whole group short-circuits as a cached hit.
        assert replayed.cached
        assert all(r.cached for r in replayed.value)
        assert [r.value for r in replayed.value] == [
            r.value for r in original.value
        ]

    def test_error_lanes_fail_alone(self, vopd_app):
        topology = make_topology("mesh", vopd_app.num_cores)
        good = SimulationJob(
            topology=topology, pattern="uniform", rate=0.2,
            traffic_seed=1, **PROTOCOL,
        )
        # "app" without a core graph is a per-lane configuration error.
        bad = SimulationJob(
            topology=topology, pattern="app", rate=0.2,
            traffic_seed=1, **PROTOCOL,
        )
        good_report, bad_error = simulate_batch([good, bad])
        assert bad_error.__class__ is SimulationError
        (solo,) = simulate_batch([good])
        assert good_report == solo  # the bad lane perturbed nothing
        (outcome,) = ExplorationEngine().run(
            [BatchSimulationJob(points=(good, bad))]
        )
        good_result, bad_result = outcome.value
        assert good_result.ok and good_result.value == solo
        assert not bad_result.ok
        assert bad_result.error_type == "SimulationError"


class TestRuntimeRecording:
    def test_runtime_block_and_per_point_engine(self, vopd_app):
        result = _campaign(
            vopd_app, "batch", rates=(0.05, 0.1), seeds=(1,),
        )
        runtime = result.to_dict()["runtime"]
        assert set(runtime) == {
            "sim_engine", "wall_clock_s", "points_per_sec",
        }
        assert runtime["sim_engine"] == "batch"
        assert runtime["wall_clock_s"] > 0
        assert runtime["points_per_sec"] > 0
        payload = result.to_dict()
        assert payload["config"]["sim_engine"] == "batch"
        assert all(p["sim_engine"] == "batch" for p in payload["points"])
        assert any(
            line.startswith("runtime") for line in
            result.summary().splitlines()
        )

    def test_exact_payloads_stay_byte_stable(self, vopd_app):
        result = _campaign(
            vopd_app, "exact", rates=(0.05,), seeds=(1,),
        )
        payload = result.to_dict()
        assert "sim_engine" not in payload["config"]
        assert all("sim_engine" not in p for p in payload["points"])


class TestMeanIsOrderStable:
    """``_mean`` uses ``math.fsum``: exact, order-independent sums."""

    def test_catastrophic_cancellation(self):
        assert _mean([1e16, 1.0, -1e16]) == pytest.approx(1.0 / 3.0)

    def test_permutation_invariance(self):
        values = [0.1 * i for i in range(1, 100)] + [1e12, -1e12]
        assert _mean(values) == _mean(list(reversed(values)))
        assert _mean(values) == _mean(sorted(values))
