"""Closed-loop simulation campaigns: determinism, curves, saturation."""

from __future__ import annotations

import math

import pytest

from repro.apps import dsp_filter, mpeg4, network_processor, vopd
from repro.core.greedy import initial_greedy_mapping
from repro.engine import ExplorationEngine, SimulationJob
from repro.errors import SimulationError
from repro.simulation.campaign import (
    CampaignConfig,
    campaign_jobs,
    detect_saturation,
    run_campaign,
    strip_runtime,
)
from repro.sunmap import run_sunmap
from repro.topology.library import make_topology

#: Tolerated relative latency dip between consecutive pre-saturation
#: points (finite-sample noise at low load).
MONOTONE_SLACK = 0.10

TINY = dict(warmup=200, measure=800, drain=600)


def _mesh_setup(build):
    app = build()
    topology = make_topology("mesh", app.num_cores)
    assignment = initial_greedy_mapping(app, topology)
    return app, topology, assignment


class TestCampaignConfig:
    def test_defaults_are_valid(self):
        config = CampaignConfig()
        assert config.num_points == len(config.rates) * len(
            config.patterns
        ) * len(config.seeds)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rates": ()},
            {"rates": (0.2, 0.1)},
            {"rates": (-0.1, 0.2)},
            {"rates": (0.1, 0.1)},
            {"patterns": ()},
            {"patterns": ("warp_speed",)},
            {"patterns": ("uniform", "uniform")},
            {"seeds": ()},
            {"seeds": (1, 1)},
            {"saturation_threshold": 0.0},
            {"saturation_threshold": 1.5},
            {"latency_blowup": 1.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            CampaignConfig(**kwargs)

    def test_app_pattern_requires_mapping(self):
        topology = make_topology("mesh", 12)
        with pytest.raises(SimulationError, match="'app'"):
            run_campaign(topology, config=CampaignConfig(rates=(0.1,)))


class TestSaturationDetection:
    def test_no_saturation(self):
        assert (
            detect_saturation(
                (0.1, 0.2), (10.0, 12.0), (1.0, 1.0)
            )
            is None
        )

    def test_delivery_collapse(self):
        rate = detect_saturation(
            (0.1, 0.2, 0.3), (10.0, 12.0, 14.0), (1.0, 1.0, 0.5)
        )
        assert rate == 0.3

    def test_latency_blowup(self):
        rate = detect_saturation(
            (0.1, 0.2, 0.3), (10.0, 12.0, 100.0), (1.0, 1.0, 1.0)
        )
        assert rate == 0.3

    def test_unbounded_latency(self):
        rate = detect_saturation(
            (0.1, 0.2), (10.0, math.inf), (1.0, 1.0)
        )
        assert rate == 0.2

    def test_all_unbounded(self):
        # No finite baseline: only delivery/unboundedness can trigger.
        assert detect_saturation((0.1,), (math.inf,), (1.0,)) == 0.1


class TestCampaignDeterminism:
    def test_jobs1_and_jobs4_bit_identical(self):
        """Acceptance: serial and process-pool campaigns match bit for
        bit, including curve statistics and switch histograms."""
        app, topology, assignment = _mesh_setup(vopd)
        config = CampaignConfig(
            rates=(0.1, 0.4),
            patterns=("app", "uniform"),
            seeds=(1, 2),
            **TINY,
        )
        serial = run_campaign(
            topology, app, assignment, config=config, jobs=1
        )
        parallel = run_campaign(
            topology, app, assignment, config=config, jobs=4
        )
        assert strip_runtime(serial.to_dict()) == strip_runtime(
            parallel.to_dict()
        )

    def test_rerun_with_same_engine_hits_cache(self):
        app, topology, assignment = _mesh_setup(dsp_filter)
        config = CampaignConfig(
            rates=(0.1, 0.3), patterns=("uniform",), **TINY
        )
        engine = ExplorationEngine()
        first = run_campaign(
            topology, app, assignment, config=config, engine=engine
        )
        hits_before = engine.cache.stats.hits
        second = run_campaign(
            topology, app, assignment, config=config, engine=engine
        )
        assert engine.cache.stats.hits >= hits_before + config.num_points
        assert strip_runtime(first.to_dict()) == strip_runtime(
            second.to_dict()
        )

    def test_simulation_jobs_coexist_with_evaluation_jobs(self):
        """One engine batch can mix mapping searches and sim points."""
        app, topology, assignment = _mesh_setup(dsp_filter)
        engine = ExplorationEngine()
        sim_job = campaign_jobs(
            topology,
            CampaignConfig(rates=(0.1,), patterns=("uniform",), **TINY),
            assignment=assignment,
        )[0]
        eval_job = engine.selection_jobs(app, topologies=[topology])[0]
        results = engine.run([sim_job, eval_job])
        assert results[0].value is not None
        assert results[1].evaluation is not None


class TestCampaignCurves:
    @pytest.mark.parametrize(
        "build", [vopd, mpeg4, dsp_filter, network_processor]
    )
    def test_benchmark_apps_monotone_until_saturation(self, build):
        """Acceptance: every benchmark app's trace-driven latency curve
        rises monotonically (within noise) up to a detected saturation
        rate."""
        app, topology, assignment = _mesh_setup(build)
        config = CampaignConfig(
            rates=(0.05, 0.15, 0.3, 0.5, 0.8),
            patterns=("app",),
            seeds=(1,),
            warmup=300,
            measure=1500,
            drain=1200,
        )
        result = run_campaign(topology, app, assignment, config=config)
        curve = result.curves["app"]
        assert curve.saturation_rate is not None
        pre = curve.pre_saturation()
        assert pre, "curve saturated at the lowest swept rate"
        for (_, lat0), (_, lat1) in zip(pre, pre[1:]):
            assert lat1 >= lat0 * (1 - MONOTONE_SLACK)

    def test_switch_load_histograms(self):
        app, topology, assignment = _mesh_setup(vopd)
        config = CampaignConfig(
            rates=(0.2,), patterns=("uniform", "hotspot"), **TINY
        )
        result = run_campaign(topology, app, assignment, config=config)
        assert set(result.switch_loads) == {"uniform", "hotspot"}
        for loads in result.switch_loads.values():
            assert loads  # every pattern produced traffic
            assert all(flits >= 0 for flits in loads.values())
            assert sum(loads.values()) > 0
        # Hotspot traffic concentrates harder than uniform traffic: its
        # hottest switch carries a larger share of the total load.
        def peak_share(loads):
            return max(loads.values()) / sum(loads.values())

        assert peak_share(result.switch_loads["hotspot"]) > peak_share(
            result.switch_loads["uniform"]
        )

    def test_seed_averaging_covers_all_rates(self):
        app, topology, assignment = _mesh_setup(dsp_filter)
        config = CampaignConfig(
            rates=(0.1, 0.3), patterns=("uniform",), seeds=(1, 2, 3),
            **TINY,
        )
        result = run_campaign(topology, app, assignment, config=config)
        assert len(result.points) == 6
        curve = result.curves["uniform"]
        assert curve.rates == (0.1, 0.3)
        assert all(math.isfinite(v) for v in curve.avg_latency)

    def test_summary_and_to_dict(self):
        app, topology, assignment = _mesh_setup(dsp_filter)
        config = CampaignConfig(
            rates=(0.1,), patterns=("app", "uniform"), **TINY
        )
        result = run_campaign(topology, app, assignment, config=config)
        text = result.summary()
        assert "campaign: dsp-filter" in text
        assert "saturation rates" in text
        assert "hottest switches" in text
        payload = result.to_dict()
        assert payload["topology"] == topology.name
        assert set(payload["curves"]) == {"app", "uniform"}
        assert len(payload["points"]) == 2


class TestSunmapIntegration:
    def test_run_sunmap_attaches_campaign(self, dsp_app):
        config = CampaignConfig(
            rates=(0.1, 0.3), patterns=("app", "uniform"), **TINY
        )
        report = run_sunmap(
            dsp_app,
            topologies=[make_topology("mesh", dsp_app.num_cores)],
            generate=False,
            simulate=config,
        )
        assert report.campaign is not None
        assert report.campaign.application == dsp_app.name
        assert report.campaign.topology_name == report.best_topology_name
        assert "campaign:" in report.summary()

    def test_run_sunmap_simulate_true_uses_defaults(self, dsp_app):
        # simulate=True runs the default sweep; cap it via topologies to
        # one topology but keep the assertion on wiring only.
        report = run_sunmap(
            dsp_app,
            topologies=[make_topology("mesh", dsp_app.num_cores)],
            generate=False,
            simulate=CampaignConfig(
                rates=(0.1,), patterns=("uniform",), **TINY
            ),
        )
        assert report.campaign is not None
        assert report.campaign.curves["uniform"].rates == (0.1,)

    def test_campaign_active_slots_follow_mapping(self):
        """Synthetic campaign traffic runs between the mapped slots."""
        app, topology, assignment = _mesh_setup(dsp_filter)
        jobs = campaign_jobs(
            topology,
            CampaignConfig(rates=(0.1,), patterns=("uniform",), **TINY),
            core_graph=app,
            assignment=assignment,
        )
        assert jobs[0].active_slots == tuple(sorted(assignment.values()))

    def test_simulation_job_is_picklable(self):
        import pickle

        app, topology, assignment = _mesh_setup(dsp_filter)
        job = campaign_jobs(
            topology,
            CampaignConfig(rates=(0.1,), patterns=("app",), **TINY),
            core_graph=app,
            assignment=assignment,
        )[0]
        clone = pickle.loads(pickle.dumps(job))
        assert isinstance(clone, SimulationJob)
        assert clone.cache_key() == job.cache_key()
