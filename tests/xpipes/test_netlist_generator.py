"""xpipes netlist construction and SystemC emission (phase 3)."""

import json

import pytest

from repro.errors import GenerationError
from repro.xpipes.components import (
    LinkSpec,
    SwitchSpec,
    pipeline_stages_for_length,
)
from repro.xpipes.generator import generate_systemc
from repro.xpipes.netlist import Netlist, build_netlist
from repro.topology.library import make_topology


def identity(n: int) -> dict:
    return {i: i for i in range(n)}


@pytest.fixture
def dsp_netlist(dsp_app):
    topo = make_topology("mesh", 6)
    return topo, build_netlist(dsp_app, topo, identity(6))


class TestComponents:
    def test_switch_module_name(self):
        s = SwitchSpec("sw_0", 4, 5, 32, 8)
        assert s.module == "xpipes_switch_4x5"

    def test_bad_switch_rejected(self):
        with pytest.raises(GenerationError):
            SwitchSpec("sw_0", 0, 5, 32, 8)

    def test_pipeline_stages_grow_with_length(self):
        assert pipeline_stages_for_length(0.5) == 1
        assert pipeline_stages_for_length(3.5) >= 2
        assert pipeline_stages_for_length(10.0) > pipeline_stages_for_length(2.0)

    def test_negative_length_rejected(self):
        with pytest.raises(GenerationError):
            pipeline_stages_for_length(-1.0)


class TestNetlist:
    def test_counts(self, dsp_netlist, dsp_app):
        topo, netlist = dsp_netlist
        assert len(netlist.switches) == 6
        assert len(netlist.nis) == dsp_app.num_cores
        assert len(netlist.links) == topo.graph.number_of_edges()

    def test_validate_passes(self, dsp_netlist):
        _, netlist = dsp_netlist
        netlist.validate()

    def test_ni_names_follow_cores(self, dsp_netlist, dsp_app):
        _, netlist = dsp_netlist
        names = {ni.instance for ni in netlist.nis}
        assert "ni_arm" in names and "ni_fft" in names

    def test_json_round_trip(self, dsp_netlist):
        _, netlist = dsp_netlist
        payload = json.loads(netlist.to_json())
        assert payload["design"] == netlist.design_name
        assert len(payload["links"]) == len(netlist.links)
        assert len(payload["switches"]) == 6

    def test_pruned_butterfly_netlist(self, dsp_app, estimator):
        from repro.routing.library import make_routing

        topo = make_topology("butterfly", 6)
        assignment = identity(6)
        result = make_routing("MP").route_all(
            topo, assignment, dsp_app.commodities()
        )
        used = estimator.used_switches(topo, result)
        netlist = build_netlist(
            dsp_app, topo, assignment, used_switches=used
        )
        assert len(netlist.switches) == len(used) < len(topo.switches)
        netlist.validate()

    def test_port_reuse_detected(self):
        netlist = Netlist("bad")
        netlist.switches.append(SwitchSpec("sw_0", 2, 2, 32, 8))
        netlist.switches.append(SwitchSpec("sw_1", 2, 2, 32, 8))
        for i in range(2):
            netlist.links.append(
                LinkSpec(
                    instance=f"l{i}",
                    src_instance="sw_0",
                    src_port=0,
                    dst_instance="sw_1",
                    dst_port=0,
                    flit_width_bits=32,
                    length_mm=1.0,
                    pipeline_stages=1,
                )
            )
        with pytest.raises(GenerationError):
            netlist.validate()

    def test_unknown_instance_detected(self):
        netlist = Netlist("bad")
        netlist.switches.append(SwitchSpec("sw_0", 2, 2, 32, 8))
        netlist.links.append(
            LinkSpec(
                instance="l0",
                src_instance="sw_0",
                src_port=0,
                dst_instance="ghost",
                dst_port=0,
                flit_width_bits=32,
                length_mm=1.0,
                pipeline_stages=1,
            )
        )
        with pytest.raises(GenerationError):
            netlist.validate()

    def test_floorplan_lengths_used(self, dsp_app):
        from repro.floorplan.lp import floorplan_mapping

        topo = make_topology("mesh", 6)
        assignment = identity(6)
        fp = floorplan_mapping(topo, assignment, dsp_app)
        lengths = fp.link_lengths(topo, assignment)
        netlist = build_netlist(
            dsp_app, topo, assignment, lengths_mm=lengths
        )
        assert any(link.length_mm > 1.0 for link in netlist.links)


class TestGenerator:
    def test_contains_all_instances(self, dsp_netlist):
        topo, netlist = dsp_netlist
        code = generate_systemc(netlist, topo)
        for spec in netlist.switches:
            assert spec.instance in code
        for ni in netlist.nis:
            assert ni.instance in code
        for link in netlist.links:
            assert f"{link.instance}_flit" in code

    def test_contains_routing_tables(self, dsp_netlist):
        topo, netlist = dsp_netlist
        code = generate_systemc(netlist, topo)
        assert "_route[][2]" in code

    def test_has_sc_main_and_clock(self, dsp_netlist):
        topo, netlist = dsp_netlist
        code = generate_systemc(netlist, topo)
        assert "sc_main" in code
        assert "sc_clock" in code
        assert code.count("{") == code.count("}")

    def test_empty_netlist_rejected(self):
        with pytest.raises(GenerationError):
            generate_systemc(Netlist("empty"))

    def test_write_systemc(self, dsp_netlist, tmp_path):
        topo, netlist = dsp_netlist
        from repro.xpipes.generator import write_systemc

        out = tmp_path / "design.cpp"
        text = write_systemc(netlist, out, topo)
        assert out.read_text() == text
