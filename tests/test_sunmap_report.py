"""The run_sunmap facade and its report object."""

from repro.core.constraints import Constraints
from repro.core.mapper import MapperConfig
from repro.sunmap import DEFAULT_ROUTING_FALLBACKS, run_sunmap
from repro.topology.library import make_topology

FAST = MapperConfig(converge=False, swap_rounds=1)


class TestRunSunmap:
    def test_report_fields(self, tiny_app):
        report = run_sunmap(tiny_app, routing="MP", config=FAST)
        assert report.application == "tiny"
        assert report.best is not None
        assert report.best_topology_name == report.selection.best_name
        assert report.netlist is not None
        assert report.systemc and "sc_main" in report.systemc

    def test_no_fallback_needed_stays_on_first_routing(self, tiny_app):
        report = run_sunmap(tiny_app, routing="MP", config=FAST)
        assert report.attempted_routings == ["MP"]
        assert report.selection.routing_code == "MP"

    def test_default_fallback_order(self):
        assert DEFAULT_ROUTING_FALLBACKS == ("SM", "SA")

    def test_custom_fallback_sequence(self, dsp_app):
        report = run_sunmap(
            dsp_app,
            routing="MP",
            constraints=Constraints(link_capacity_mb_s=500.0),
            routing_fallbacks=("SA",),
            config=FAST,
        )
        assert report.attempted_routings == ["MP", "SA"]
        assert report.selection.routing_code == "SA"

    def test_duplicate_routing_not_reattempted(self, tiny_app):
        report = run_sunmap(
            tiny_app, routing="SM", routing_fallbacks=("SM", "SA"),
            config=FAST,
        )
        assert report.attempted_routings.count("SM") == 1

    def test_explicit_topology_subset(self, tiny_app):
        topos = [make_topology("mesh", 4)]
        report = run_sunmap(tiny_app, topologies=topos, config=FAST)
        assert report.best_topology_name == "mesh-2x2"

    def test_summary_lists_key_facts(self, tiny_app):
        report = run_sunmap(tiny_app, objective="power", config=FAST)
        text = report.summary()
        assert "application: tiny" in text
        assert "objective:   power" in text
        assert "generated:" in text

    def test_netlist_matches_best_topology(self, dsp_app):
        report = run_sunmap(
            dsp_app,
            constraints=Constraints(link_capacity_mb_s=1000.0),
            config=MapperConfig(converge=True, max_rounds=6),
        )
        best = report.best
        mapped_cores = {ni.core_name for ni in report.netlist.nis}
        assert mapped_cores == {c.name for c in dsp_app.cores}
        used = {s.instance for s in report.netlist.switches}
        assert len(used) <= len(best.topology.switches)
