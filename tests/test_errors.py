"""Error hierarchy contracts."""

import pytest

from repro.errors import (
    CoreGraphError,
    FloorplanError,
    GenerationError,
    MappingInfeasibleError,
    ReproError,
    SimulationError,
    TopologyError,
    UnsupportedRoutingError,
)

ALL_ERRORS = [
    CoreGraphError,
    TopologyError,
    UnsupportedRoutingError,
    MappingInfeasibleError,
    FloorplanError,
    SimulationError,
    GenerationError,
]


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    @pytest.mark.parametrize("exc_type", ALL_ERRORS)
    def test_catchable_as_base(self, exc_type):
        with pytest.raises(ReproError):
            raise exc_type("boom")

    def test_one_base_catch_covers_public_api(self):
        """API boundary contract: a caller wrapping any library call in
        ``except ReproError`` sees every domain failure."""
        from repro import CoreGraph, make_topology

        caught = []
        for trigger in (
            lambda: CoreGraph("x").validate(),
            lambda: make_topology("nope", 4),
        ):
            try:
                trigger()
            except ReproError as exc:
                caught.append(type(exc).__name__)
        assert caught == ["CoreGraphError", "TopologyError"]
