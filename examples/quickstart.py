"""Quickstart: run the full SUNMAP flow on a custom application.

Build a core graph, let SUNMAP map it onto every library topology,
select the best one for your objective, and generate the SystemC
network description — the complete three-phase flow of the paper's
Figure 4 in ~30 lines.

Run:  python examples/quickstart.py
"""

from repro import Constraints, CoreGraph, run_sunmap


def build_camera_pipeline() -> CoreGraph:
    """A small camera ISP pipeline: sensor -> ... -> encoder + DMA."""
    app = CoreGraph("camera-isp")
    app.add_core("sensor_if", area_mm2=1.5)
    app.add_core("bayer", area_mm2=2.0)
    app.add_core("denoise", area_mm2=3.5)
    app.add_core("tone_map", area_mm2=2.5)
    app.add_core("scaler", area_mm2=2.0)
    app.add_core("encoder", area_mm2=4.5)
    app.add_core("dram_ctl", area_mm2=5.0)
    app.add_core("cpu", area_mm2=4.0)

    app.add_flow("sensor_if", "bayer", 380.0)  # MB/s
    app.add_flow("bayer", "denoise", 380.0)
    app.add_flow("denoise", "tone_map", 380.0)
    app.add_flow("tone_map", "scaler", 380.0)
    app.add_flow("scaler", "encoder", 250.0)
    app.add_flow("encoder", "dram_ctl", 120.0)
    app.add_flow("cpu", "dram_ctl", 200.0)
    app.add_flow("dram_ctl", "cpu", 200.0)
    app.add_flow("cpu", "encoder", 30.0)
    return app


def main() -> None:
    app = build_camera_pipeline()
    print(f"application: {app}")

    report = run_sunmap(
        app,
        routing="MP",          # minimum-path; falls back to SM/SA
        objective="power",     # minimize network power
        constraints=Constraints(link_capacity_mb_s=500.0),
    )
    print()
    print(report.summary())

    best = report.best
    print()
    print("chosen mapping:")
    for core_index, slot in sorted(best.assignment.items()):
        print(f"  {app.core(core_index).name:12s} -> slot {slot}")

    print()
    print("generated SystemC (first 15 lines):")
    for line in report.systemc.splitlines()[:15]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
