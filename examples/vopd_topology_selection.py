"""Section 6.1 walk-through: VOPD topology selection.

Maps the Video Object Plane Decoder onto the five library topologies
under minimum-path routing and prints the comparison table of the
paper's Figure 6 — the butterfly (4-ary 2-fly) wins on delay, area and
power, because VOPD's bandwidth demands fit its diversity-free links.

Run:  python examples/vopd_topology_selection.py
"""

from repro import MapperConfig, select_topology, vopd


def main() -> None:
    app = vopd()
    print(f"application: {app}")
    print(f"flows >= 300 MB/s: "
          f"{sum(1 for v in app.flows().values() if v >= 300)}")
    print()

    config = MapperConfig(converge=True, max_rounds=10)
    for objective in ("hops", "area", "power"):
        selection = select_topology(
            app, routing="MP", objective=objective, config=config
        )
        print(f"== objective: {objective} ==")
        print(selection.format_table())
        print(f"-> best: {selection.best_name}")
        print()

    print(
        "The paper's conclusion (Section 6.1): 'butterfly is the best\n"
        "topology for VOPD' — it trades path diversity for fewer, smaller\n"
        "switches and a uniform two-hop delay."
    )


if __name__ == "__main__":
    main()
