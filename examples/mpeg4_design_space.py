"""Section 6.3 walk-through: exploring a chosen topology (MPEG4 / mesh).

Two explorations of the paper's Figure 9:
  (a) the effect of the routing function — minimum link bandwidth each
      of DO/MP/SM/SA needs for the MPEG4 decoder on a mesh;
  (b) the area-power Pareto points across the mappings the swap phase
      evaluates.

Also demonstrates the Section 6.1 narrative: minimum-path routing fails
on every topology (910 MB/s SDRAM flow vs 500 MB/s links) and the flow
escalates to split-traffic routing, under which only the butterfly
remains infeasible.

Run:  python examples/mpeg4_design_space.py
"""

from repro import MapperConfig, mpeg4, run_sunmap
from repro.core import area_power_exploration, minimum_bandwidth_per_routing
from repro.topology import make_topology


def main() -> None:
    app = mpeg4()
    config = MapperConfig(converge=True, max_rounds=8)
    mesh = make_topology("mesh", app.num_cores)

    print("== Figure 9(a): minimum link bandwidth per routing function ==")
    sweep = minimum_bandwidth_per_routing(app, mesh, config=config)
    for code, value in sweep.items():
        status = "FITS 500 MB/s" if value and value <= 500 else "needs more"
        print(f"  {code}: {value:7.1f} MB/s   ({status})")
    print()

    print("== Figure 9(b): area-power Pareto points (mesh, SM routing) ==")
    points, front = area_power_exploration(app, mesh, routing="SM",
                                           config=config)
    print(f"  evaluated feasible mappings: {len(points)}")
    print(f"  Pareto-optimal points:       {len(front)}")
    for p in front:
        print(f"    area {p.area_mm2:7.2f} mm2  power {p.power_mw:7.1f} mW"
              f"  hops {p.avg_hops:.2f}")
    print()

    print("== Full flow with routing fallback (Section 6.1) ==")
    report = run_sunmap(app, routing="MP", objective="power", config=config)
    print(f"  attempted routings: {report.attempted_routings}")
    print(report.selection.format_table())
    print(f"  -> best: {report.best_topology_name}")


if __name__ == "__main__":
    main()
