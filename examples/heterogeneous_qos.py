"""Extensions walk-through: heterogeneous topologies and QoS bounds.

The paper's conclusions name two future-work items: "automatic
heterogeneous topology modeling and guaranteeing Quality-of-Service for
applications". This example exercises both extensions of the
reproduction:

  1. a custom heterogeneous fabric (two hubs with different radices,
     bridged) competing against the standard library for the VOPD
     decoder;
  2. a QoS per-flow hop guarantee that disqualifies the 3-stage Clos
     and steers selection toward 2-hop-capable networks.

Run:  python examples/heterogeneous_qos.py
"""

from repro import Constraints, MapperConfig, select_topology, vopd
from repro.topology import CustomTopology, standard_library


def build_dual_cluster() -> CustomTopology:
    """VOPD-sized heterogeneous fabric: a 7-core hub and a 5-core hub,
    tied by a two-switch bridge (hub radices differ: 9x9 vs 7x7)."""
    return CustomTopology(
        name="dual-cluster",
        slot_switch=[0] * 7 + [1] * 5,
        links=[(0, 2), (2, 3), (3, 1), (0, 3), (2, 1)],
        positions={0: (0.0, 0.5), 2: (1.0, 0.0), 3: (1.0, 1.0), 1: (2.0, 0.5)},
    )


def main() -> None:
    app = vopd()
    config = MapperConfig(converge=True, max_rounds=8)

    print("== 1. heterogeneous fabric vs the standard library ==")
    topologies = standard_library(app.num_cores) + [build_dual_cluster()]
    selection = select_topology(
        app, topologies=topologies, routing="MP", objective="power",
        config=config,
    )
    print(selection.format_table())
    print(f"-> best: {selection.best_name}")
    print()

    print("== 2. QoS: guarantee every flow at most 2 switch hops ==")
    qos = Constraints(max_flow_hops=2)
    selection = select_topology(
        app, routing="MP", objective="hops", constraints=qos, config=config
    )
    print(selection.format_table())
    print(f"-> best under 2-hop guarantee: {selection.best_name}")
    clos_rows = [
        row for row in selection.table() if row["topology"].startswith("clos")
    ]
    print(f"   (clos feasible? {clos_rows[0]['feasible']} — every Clos "
          f"route is 3 stages)")


if __name__ == "__main__":
    main()
