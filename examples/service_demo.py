"""Design service demo: one warm engine answering concurrent requests.

Starts an in-process :class:`repro.service.DesignService` backed by a
persistent directory cache, fires a burst of concurrent requests at it
— including deliberate duplicates and one invalid request — and shows
what the service layer buys you:

* identical in-flight requests are computed **once** (the duplicates
  just await the first computation);
* results are served from the persistent store on the next run of this
  script (run it twice and compare the timings);
* every response is byte-identical to the equivalent direct library
  call, whatever the cache did.

Run:  PYTHONPATH=src python examples/service_demo.py [cache-dir]

CI runs this script in the smoke job with the cache directory restored
from the previous run's artifact, proving cross-run warm hits.
"""

import asyncio
import json
import sys
import time

from repro.service import DesignService

#: The burst: a select, the SAME select twice more (dedup), a synthesis
#: sweep, a campaign, and one request that violates the contract.
REQUESTS = [
    {"v": 1, "id": "select-1", "kind": "select",
     "params": {"app": "vopd", "objective": "hops"}},
    {"v": 1, "id": "select-2", "kind": "select",
     "params": {"app": "vopd", "objective": "hops"}},
    {"v": 1, "id": "select-3", "kind": "select",
     "params": {"app": "vopd", "objective": "hops", "routing": "MP"}},
    {"v": 1, "id": "synth-1", "kind": "synthesize",
     "params": {"app": "vopd", "strategies": ["greedy"],
                "concentrations": [3], "max_switch_degrees": [6],
                "max_candidates": 3}},
    {"v": 1, "id": "campaign-1", "kind": "campaign",
     "params": {"app": "vopd", "topology": "mesh",
                "rates": [0.05, 0.1], "patterns": ["app", "uniform"],
                "seeds": [1], "warmup": 50, "measure": 100, "drain": 50}},
    {"v": 1, "id": "broken-1", "kind": "select",
     "params": {"app": "vopd", "routing": "northwest"}},
]


def describe(response: dict) -> str:
    """One summary line per response."""
    rid = response["id"]
    flags = " (deduped)" if response.get("stats", {}).get("deduped") else ""
    if not response["ok"]:
        err = response["error"]
        return f"  {rid:12s} ERROR {err['type']}: {err['message'][:60]}"
    result = response["result"]
    if response["kind"] == "select":
        detail = f"best={result['selection']['best']}"
    elif response["kind"] == "synthesize":
        detail = f"best={result['best']}"
    else:
        curves = ", ".join(sorted(result["curves"]))
        detail = f"curves: {curves}"
    return f"  {rid:12s} ok    {detail}{flags}"


async def main() -> None:
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else ".sunmap-cache"
    service = DesignService(cache_backend=f"dir:{cache_dir}")
    print(f"design service with persistent cache at {cache_dir}/")

    start = time.perf_counter()
    responses = await asyncio.gather(
        *(service.handle(request) for request in REQUESTS)
    )
    elapsed = time.perf_counter() - start

    print(f"\n{len(REQUESTS)} concurrent requests in {elapsed:.2f}s:")
    for response in responses:
        print(describe(response))

    stats = service.engine.cache.stats
    print(
        f"\ncomputed {service.computed} of {service.requests} requests "
        f"({service.inflight.deduped} deduped in flight); "
        f"cache: {stats}"
    )
    if stats.hits and not stats.misses:
        print("warm start: every result came from the persistent store")

    # select-1/2/3 are one computation — and identical bits.
    select = [r for r in responses if r["id"].startswith("select")]
    payloads = {json.dumps(r["result"], sort_keys=True) for r in select}
    assert len(payloads) == 1, "deduplicated responses must be identical"
    ok = sum(1 for r in responses if r["ok"])
    assert ok == len(REQUESTS) - 1, "exactly one request should fail"
    print("demo checks passed")


if __name__ == "__main__":
    asyncio.run(main())
