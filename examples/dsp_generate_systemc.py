"""Section 6.4 walk-through: DSP filter — selection, floorplan, SystemC.

Maps the six-core DSP filter application, selects the butterfly (the
paper's Figure 10(b): four 3x3 switches survive pruning), shows the
floorplan, and writes the generated SystemC design plus the
machine-readable netlist next to this script.

Run:  python examples/dsp_generate_systemc.py
"""

import pathlib

from repro import Constraints, MapperConfig, dsp_filter, run_sunmap

OUT_DIR = pathlib.Path(__file__).parent / "out"


def main() -> None:
    app = dsp_filter()
    report = run_sunmap(
        app,
        routing="MP",
        objective="hops",
        # The DSP's 600 MB/s stream links exceed the video apps'
        # conservative 500 MB/s assumption; Section 6.4 clearly ran with
        # roomier links.
        constraints=Constraints(link_capacity_mb_s=1000.0),
        config=MapperConfig(converge=True, max_rounds=10),
    )
    print(report.summary())
    print()

    best = report.best
    print("floorplan (Figure 10(b) style):")
    fp = best.floorplan
    for key, rect in sorted(fp.rects.items(), key=lambda kv: kv[1].x):
        label = (
            app.core(key[1]).name if key[0] == "core" else f"switch {key[1]}"
        )
        print(
            f"  {label:<14} at ({rect.x:5.2f}, {rect.y:5.2f}) "
            f"size {rect.w:4.2f} x {rect.h:4.2f} mm"
        )
    print(f"  chip: {fp.width_mm:.2f} x {fp.height_mm:.2f} mm "
          f"({fp.area_mm2:.1f} mm2, {fp.whitespace_fraction * 100:.0f}% "
          f"whitespace)")
    print()

    OUT_DIR.mkdir(exist_ok=True)
    cpp = OUT_DIR / "dsp_butterfly.cpp"
    cpp.write_text(report.systemc, encoding="utf-8")
    netlist_json = OUT_DIR / "dsp_butterfly_netlist.json"
    netlist_json.write_text(report.netlist.to_json(), encoding="utf-8")
    print(f"SystemC written to  {cpp}")
    print(f"netlist written to  {netlist_json}")
    print()
    print("SystemC head:")
    for line in report.systemc.splitlines()[:12]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
