"""Application-specific topology synthesis on the VOPD decoder.

The standard library's best topology for VOPD under the hop objective
is the butterfly at 2.0 average hops — every commodity crosses two
switches, because no regular topology can do better. A fabric *shaped
like the application* can: topology synthesis partitions the core graph
into clusters of tightly-communicating cores, concentrates each cluster
on one switch (heavy flows become one-hop), and sizes the inter-switch
channels from the traffic that must cross clusters.

This example runs the synthesis sweep standalone, then races the
candidates against the full standard library in one selection table,
and finally saves the winning fabric so it can be reloaded without
re-running synthesis (``sunmap map --topology-file vopd_fabric.json``).

Run:  python examples/vopd_synthesis.py
"""

from repro import run_sunmap, save_topology, vopd
from repro.synthesis import synthesize_topologies


def main() -> None:
    app = vopd()
    print(f"application: {app}")

    # Standalone sweep: generate, prune and evaluate candidate fabrics.
    result = synthesize_topologies(app, routing="MP", objective="hops")
    print()
    print("synthesized candidates (ranked by objective cost):")
    print(result.format_table())
    print(f"({len(result.pruned)} candidates pruned before evaluation)")

    # Head-to-head: the same candidates race the standard library in
    # one selection table; the winner flows through floorplanning,
    # power estimation and SystemC generation like any library entry.
    report = run_sunmap(app, objective="hops", synthesize=True)
    print()
    print(report.summary())

    best = report.best
    library_rows = [
        row
        for row in report.selection.table()
        if not row.get("synthesized")
    ]
    best_library = min(
        (row for row in library_rows if row["feasible"]),
        key=lambda row: row["avg_hops"],
    )
    print()
    print(
        f"best library topology: {best_library['topology']} at "
        f"{best_library['avg_hops']:.3f} avg hops"
    )
    print(
        f"synthesized winner:    {report.best_topology_name} at "
        f"{best.avg_hops:.3f} avg hops "
        f"({best_library['avg_hops'] / best.avg_hops:.2f}x better, "
        f"{best.power_mw:.0f} mW vs {best_library['power_mw']:.0f} mW)"
    )

    save_topology(best.topology, "vopd_fabric.json")
    print()
    print(
        "winning fabric saved to vopd_fabric.json — reload it with\n"
        "  python -m repro.cli map --app vopd "
        "--topology-file vopd_fabric.json"
    )


if __name__ == "__main__":
    main()
