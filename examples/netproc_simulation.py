"""Section 6.2 walk-through: network processor latency simulation.

Sweeps injection rate on the 16-node network processor, driving each
topology with its adversarial traffic pattern, and plots (ASCII) the
average packet latency curves of the paper's Figure 8(b). The Clos,
with maximum path diversity, saturates last.

Run:  python examples/netproc_simulation.py
"""

from repro.simulation import (
    SimConfig,
    adversarial_pattern,
    latency_vs_injection,
)
from repro.topology import make_topology

RATES = [0.1, 0.2, 0.3, 0.4, 0.5]
TOPOLOGIES = ("mesh", "torus", "hypercube", "clos", "butterfly")
PLOT_CAP = 300.0  # cycles; bars clip here (saturation)


def main() -> None:
    print("16-node network processor, adversarial traffic per topology")
    print("(warmup 500 / measure 2500 / drain 2000 cycles, 8-flit packets)")
    print()
    curves = {}
    for name in TOPOLOGIES:
        topo = make_topology(name, 16)
        pattern = adversarial_pattern(topo)
        reports = latency_vs_injection(
            topo, RATES, pattern=pattern, config=SimConfig(seed=1),
            warmup=500, measure=2500, drain=2000,
            active_slots=list(range(16)),
        )
        curves[name] = (pattern, reports)
        row = "  ".join(
            f"{r.avg_latency:7.1f}{'*' if r.saturated() else ' '}"
            for r in reports
        )
        print(f"{name:<11} [{pattern:<14}] {row}")
    print(f"{'':<11} {'':<16} " + "  ".join(f"r={r:<5}" for r in RATES))
    print("(* = saturated)")
    print()

    print("ASCII latency plot at each rate (each # ~ 12 cycles):")
    for idx, rate in enumerate(RATES):
        print(f"-- injection rate {rate} flits/cycle/node --")
        for name in TOPOLOGIES:
            rep = curves[name][1][idx]
            value = min(rep.avg_latency, PLOT_CAP)
            bar = "#" * max(1, int(value / 12))
            sat = " (saturated)" if rep.saturated() else ""
            print(f"  {name:<11}|{bar}{sat}")
    print()
    print("Paper Figure 8(b): 'the clos clearly outperforms other "
          "topologies'.")


if __name__ == "__main__":
    main()
